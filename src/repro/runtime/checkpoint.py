"""Study checkpointing through the collection database.

``run_study`` over 51 geographies is a long crawl; the paper's own
archive-style collection (and any production deployment) must survive
interrupts without recrawling finished work.  The pipeline persists a
per-geography checkpoint — the stitched timeline into the ``series``
table, the detected spikes into the ``spikes`` table, both written in
one transaction as the geography completes — and a resuming study
serves those geographies straight from the database.

The checkpoint is keyed by (term, geo) and stamped with the study
window, the averaging diagnostics, and the reconstruction backend
(stitcher/averager registry names plus the stitch report) in the
series row's metadata.  A stored result is only honored when the
requested window matches — a database file can never leak a stale
study into a different one — and a *backend* mismatch refuses loudly
(:class:`repro.errors.CheckpointMismatchError`): silently mixing
timelines produced under different calibration semantics would corrupt
the study, whereas a window mismatch just means the geography
re-analyzes.
"""

from __future__ import annotations

from repro.collection.database import CollectionDatabase
from repro.core.averaging import AveragingResult
from repro.core.pipeline import StateResult, StudyCheckpoint
from repro.core.reconstruct import DEFAULT_AVERAGER, DEFAULT_STITCHER
from repro.core.series import HourlyTimeline
from repro.core.spikes import SpikeSet
from repro.core.stitching import StitchReport
from repro.errors import CheckpointMismatchError
from repro.timeutil import TimeWindow

_EMPTY_STITCH = StitchReport(frames=0, carried_ratios=0, ratios=())


class DatabaseCheckpoint(StudyCheckpoint):
    """Persists per-geography study results in a collection database."""

    def __init__(
        self,
        database: CollectionDatabase,
        term: str,
        stitcher: str = DEFAULT_STITCHER,
        averager: str = DEFAULT_AVERAGER,
    ) -> None:
        self.database = database
        self.term = term
        #: Backend this study runs with; stored results built by any
        #: other backend are refused on load.
        self.stitcher = stitcher
        self.averager = averager

    def save_state(self, result: StateResult, window: TimeWindow) -> None:
        averaging = result.averaging
        meta = {
            "window_start": window.start.isoformat(),
            "window_end": window.end.isoformat(),
            "rounds_used": averaging.rounds_used,
            "converged": averaging.converged,
            "similarity_history": list(averaging.similarity_history),
            "stitcher": averaging.stitcher,
            "averager": averaging.averager,
            "stitch_report": averaging.stitch_report.to_dict(),
        }
        self.database.store_checkpoint(
            self.term,
            result.geo,
            result.timeline.start,
            result.timeline.values,
            meta,
            list(result.spikes),
        )

    def load_state(self, geo: str, window: TimeWindow) -> StateResult | None:
        meta = self.database.load_series_meta(self.term, geo)
        if meta is None:
            return None
        if (
            meta.get("window_start") != window.start.isoformat()
            or meta.get("window_end") != window.end.isoformat()
        ):
            return None
        # Checkpoints written before backends existed are default-backend.
        stored_stitcher = meta.get("stitcher", DEFAULT_STITCHER)
        stored_averager = meta.get("averager", DEFAULT_AVERAGER)
        if stored_stitcher != self.stitcher or stored_averager != self.averager:
            raise CheckpointMismatchError(
                f"checkpoint for {geo!r} was built with "
                f"stitcher={stored_stitcher!r}/averager={stored_averager!r} "
                f"but this study is configured with "
                f"stitcher={self.stitcher!r}/averager={self.averager!r}; "
                f"rerun with the stored backend or use a fresh database"
            )
        series = self.database.load_series(self.term, geo)
        if series is None:
            return None
        start, values = series
        timeline = HourlyTimeline(term=self.term, geo=geo, start=start, values=values)
        spikes = SpikeSet(self.database.load_spikes(term=self.term, geo=geo))
        report_meta = meta.get("stitch_report")
        report = (
            StitchReport.from_dict(report_meta)
            if report_meta is not None
            else _EMPTY_STITCH
        )
        averaging = AveragingResult(
            timeline=timeline,
            spikes=spikes,
            rounds_used=int(meta.get("rounds_used", 0)),
            converged=bool(meta.get("converged", False)),
            similarity_history=tuple(meta.get("similarity_history", ())),
            stitch_report=report,
            responses=(),
            stitcher=stored_stitcher,
            averager=stored_averager,
        )
        return StateResult(
            geo=geo, timeline=timeline, spikes=spikes, averaging=averaging
        )

    def save_annotated(self, spikes: SpikeSet) -> None:
        """Overwrite stored spikes with their final annotated versions."""
        self.database.store_spikes(list(spikes))

    def completed_geos(self, window: TimeWindow) -> tuple[str, ...]:
        """Geographies with a checkpoint valid for *window* (sorted)."""
        return tuple(
            geo
            for geo in self.database.series_geos(self.term)
            if self.load_state(geo, window) is not None
        )
