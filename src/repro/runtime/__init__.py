"""The execution layer of the reproduction.

Everything about *how* a study runs — as opposed to *what* it computes
— lives here:

* :class:`StudyRuntime` / :func:`StudyRuntime.build` — the single
  factory that wires world, service, crawler, and pipeline together
  for the CLI, the web app, the benchmarks, and the examples;
* :class:`StudyExecutor` (:class:`SerialExecutor`,
  :class:`ThreadPoolStudyExecutor`,
  :class:`ProcessPoolStudyExecutor`) — per-geography parallelism with
  deterministic ordering, across threads or geography-sharded worker
  processes;
* :class:`DatabaseCheckpoint` — durable per-geography resume through
  the collection database (the columnar alternative lives in
  :mod:`repro.store`);
* the structured progress events of :mod:`repro.core.progress`,
  re-exported for convenience.
"""

from repro.core.progress import (
    AnnotationStarted,
    CacheStats,
    CheckpointHit,
    CrawlStats,
    FaultStats,
    FramesDropped,
    GeoFinished,
    GeoStarted,
    ProgressEvent,
    ProgressListener,
    ProgressLog,
    ServingStats,
    ShardStats,
    SnapshotInstalled,
    StudyFinished,
    StudyStarted,
    text_listener,
)
from repro.runtime.checkpoint import DatabaseCheckpoint
from repro.runtime.executor import (
    EXECUTOR_KINDS,
    ProcessPoolStudyExecutor,
    SerialExecutor,
    StudyExecutor,
    ThreadPoolStudyExecutor,
    make_executor,
)
from repro.runtime.study import (
    ALL_GEOS,
    STUDY_END,
    STUDY_START,
    RuntimeConfig,
    StudyRuntime,
)

__all__ = [
    "ALL_GEOS",
    "AnnotationStarted",
    "CacheStats",
    "CheckpointHit",
    "CrawlStats",
    "DatabaseCheckpoint",
    "EXECUTOR_KINDS",
    "FaultStats",
    "FramesDropped",
    "GeoFinished",
    "GeoStarted",
    "ProcessPoolStudyExecutor",
    "ProgressEvent",
    "ProgressListener",
    "ProgressLog",
    "RuntimeConfig",
    "STUDY_END",
    "STUDY_START",
    "SerialExecutor",
    "ServingStats",
    "ShardStats",
    "SnapshotInstalled",
    "StudyExecutor",
    "StudyFinished",
    "StudyRuntime",
    "StudyStarted",
    "ThreadPoolStudyExecutor",
    "make_executor",
    "text_listener",
]
