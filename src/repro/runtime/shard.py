"""Process shards: picklable per-geography workers + partition merging.

The process executor cannot ship the pipeline's inline closures across
a process boundary, so the per-geography collect → stitch → average →
detect stage lives here as a **top-level picklable function**
(:func:`run_shard`) over a **picklable task record**
(:class:`ShardTask`).  A worker process rebuilds the whole seeded
deployment from the :class:`~repro.runtime.study.RuntimeConfig` — the
simulated world, the Trends service, the fetcher fleet — and analyzes
its slice of the geographies exactly as a serial run would.  Every
frame is deterministic per ``(request, sample_round)`` and every fault
per request identity, so a shard's results are byte-identical to the
same geographies analyzed serially.

Durability is partitioned the same way: a shard checkpoints into its
own sqlite file (``<db>.shard<k>``) and/or columnar partition
(``<store>/.shard-<k>``), and the parent merges the partitions into
the main stores **in shard order** once every worker returned — an
interrupt can never leave a half-merged study, and the merged database
is byte-for-byte the same rows a serial run would have written.

Structured progress events cross the process boundary through a
manager queue: workers put :class:`~repro.core.progress.ProgressEvent`
dataclasses (plain picklable records), the parent drains them into the
study's listener as they arrive, and each shard signs off with a
:class:`~repro.core.progress.ShardStats` carrying its wall-clock and
peak RSS.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import multiprocessing
import os
import threading
import time
from datetime import datetime
from typing import TYPE_CHECKING

from repro.core.progress import CrawlStats, ShardStats, peak_rss_kb
from repro.timeutil import TimeWindow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.collection.database import CollectionDatabase
    from repro.core.pipeline import Sift, StateResult
    from repro.runtime.executor import ProcessPoolStudyExecutor
    from repro.runtime.study import RuntimeConfig
    from repro.store import ColumnarStore

#: Events with no study-wide meaning are still forwarded verbatim; the
#: queue sentinel ends the parent's drain loop.
_SENTINEL = None


def process_context() -> multiprocessing.context.BaseContext:
    """The cheapest available start method (fork on POSIX, else spawn).

    Determinism never depends on the start method — workers rebuild
    their deployment from the pickled config either way — only startup
    latency does.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """Everything one worker process needs, picklable end to end.

    ``config`` is the parent's runtime config already rewritten for the
    shard: the shard's private database/store partitions, serial
    execution, and checkpointing only when a durable partition exists.
    """

    shard: int
    config: "RuntimeConfig"
    geos: tuple[str, ...]
    #: Global study indices of ``geos`` (for GeoStarted/GeoFinished).
    indices: tuple[int, ...]
    total: int
    window_start: datetime
    window_end: datetime
    worker_count: int


def run_shard(
    task: ShardTask, queue=None
) -> list[tuple[int, str, "StateResult", bool]]:
    """Analyze one shard's geographies inside a worker process.

    Returns ``(global_index, geo, result, from_checkpoint)`` tuples in
    shard order.  Progress events are forwarded through *queue* when
    one is given (a picklable manager-queue proxy).
    """
    from repro.runtime.study import StudyRuntime

    started = time.perf_counter()
    listener = queue.put if queue is not None else None
    window = TimeWindow(task.window_start, task.window_end)
    outcomes: list[tuple[int, str, StateResult, bool]] = []
    with StudyRuntime(task.config, progress=listener) as runtime:
        sift = runtime.sift
        for index, geo in zip(task.indices, task.geos):
            result, from_checkpoint = sift._analyze_or_resume(
                geo, window, index=index, total=task.total
            )
            outcomes.append((index, geo, result, from_checkpoint))
        if queue is not None:
            report = runtime.report()
            queue.put(
                CrawlStats(
                    requested=report.requested,
                    fetched=report.fetched,
                    served_from_cache=report.served_from_cache,
                    retries=report.retries,
                    elapsed_seconds=report.elapsed_seconds,
                    frames_per_second=report.frames_per_second,
                    dead_lettered=report.dead_lettered,
                )
            )
            queue.put(
                ShardStats(
                    shard=task.shard,
                    executor="process",
                    worker_count=task.worker_count,
                    geo_count=len(task.geos),
                    elapsed_seconds=time.perf_counter() - started,
                    peak_rss_kb=peak_rss_kb(),
                )
            )
    return outcomes


# -- partition naming ---------------------------------------------------------


def database_partition(path: str, shard: int) -> str:
    """Private sqlite file of one shard (sibling of the parent db)."""
    return f"{path}.shard{shard}"


def store_partition(root: str, shard: int) -> str:
    """Private columnar directory of one shard (inside the store root)."""
    return os.path.join(root, f".shard-{shard}")


def remove_database_partition(path: str) -> None:
    """Delete a shard's sqlite partition including WAL side files."""
    for suffix in ("", "-wal", "-shm"):
        with contextlib.suppress(FileNotFoundError):
            os.unlink(path + suffix)


def _shard_config(
    config: "RuntimeConfig", shard: int, durable_db: bool, durable_store: bool
) -> "RuntimeConfig":
    """The parent config rewritten for one worker process."""
    database = (
        database_partition(config.database, shard) if durable_db else ":memory:"
    )
    store = store_partition(config.store, shard) if durable_store else None
    return dataclasses.replace(
        config,
        database=database,
        store=store,
        max_workers=1,
        executor="serial",
        # A shard checkpoints only when there is a partition to merge;
        # otherwise its results travel back through the result pickle.
        checkpoint=config.checkpoint and (durable_db or durable_store),
    )


# -- the sharded study driver -------------------------------------------------


def run_sharded_study(
    executor: "ProcessPoolStudyExecutor",
    sift: "Sift",
    geos: tuple[str, ...],
    window: TimeWindow,
    *,
    config: "RuntimeConfig",
    database: "CollectionDatabase | None",
    store: "ColumnarStore | None",
) -> list[tuple["StateResult", bool]]:
    """The per-geography stage of ``run_study``, sharded by geography.

    See :class:`repro.runtime.executor.ProcessPoolStudyExecutor` for
    the contract; this function is the implementation (kept here so the
    executor module stays import-light).
    """
    total = len(geos)
    outcomes: list = [None] * total

    # 1. Parent-side resume: geographies already in the parent
    #    checkpoint never reach a worker, whatever executor (or format)
    #    wrote them — zero-refetch resume across executor switches.
    remaining: list[tuple[int, str]] = []
    for index, geo in enumerate(geos):
        restored = sift._resume_from_checkpoint(geo, window, index, total)
        if restored is not None:
            outcomes[index] = (restored, True)
        else:
            remaining.append((index, geo))
    if not remaining:
        return outcomes

    workers = min(executor.max_workers, len(remaining))
    durable_db = config.database != ":memory:" and config.checkpoint
    durable_store = config.store is not None and config.checkpoint

    # Worker crawl accounting never reaches the parent's collection
    # layer; capture the forwarded CrawlStats (one per shard) so
    # StudyRuntime.report covers the whole study under any executor.
    def emit(event) -> None:
        if isinstance(event, CrawlStats):
            executor.worker_crawl.append(event)
        sift._emit(event)

    # 2. Deal remaining geographies round-robin into `workers` shards
    #    (global order is preserved within each shard).
    tasks = []
    for shard in range(workers):
        slice_ = remaining[shard::workers]
        tasks.append(
            ShardTask(
                shard=shard,
                config=_shard_config(config, shard, durable_db, durable_store),
                geos=tuple(geo for _, geo in slice_),
                indices=tuple(index for index, _ in slice_),
                total=total,
                window_start=window.start,
                window_end=window.end,
                worker_count=workers,
            )
        )

    if workers == 1:
        # One shard is just a serial run in-process: skip the pool (and
        # its pickling) but keep the identical code path per geography.
        shard_results = [_run_shard_inline(tasks[0], emit)]
    else:
        shard_results = _run_shards_pooled(tasks, emit, workers)

    # 3. Merge every shard partition into the parent stores, in shard
    #    order, then drop the partitions.  Merging precedes annotation
    #    (run_study overwrites spikes with annotated versions later).
    for task in tasks:
        if durable_db and database is not None:
            partition = task.config.database
            database.merge_partition(partition)
            remove_database_partition(partition)
        if durable_store and store is not None:
            store.merge_partition(task.config.store)

    # 4. Reassemble in input-geography order.
    worker_persisted = durable_db or durable_store
    for shard_outcome in shard_results:
        for index, geo, result, from_checkpoint in shard_outcome:
            outcomes[index] = (result, from_checkpoint)
            # Without a durable partition the parent owns persistence,
            # exactly as a serial run would (e.g. an in-memory study
            # database still receives its per-geography checkpoints).
            if (
                not worker_persisted
                and not from_checkpoint
                and sift.checkpoint is not None
            ):
                sift.checkpoint.save_state(result, window)
    return outcomes


def _run_shard_inline(task: ShardTask, emit):
    """Run one shard on the calling thread, events straight to *emit*."""

    class _DirectQueue:
        @staticmethod
        def put(event) -> None:
            emit(event)

    return run_shard(task, _DirectQueue())


def _run_shards_pooled(tasks: list[ShardTask], emit, workers: int):
    """Run shards in worker processes, draining events as they arrive."""
    with multiprocessing.Manager() as manager:
        queue = manager.Queue()
        context = process_context()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            # Submit before starting the drain thread: with the fork
            # start method, forking under extra threads is fragile.
            futures = [pool.submit(run_shard, task, queue) for task in tasks]
            drain = threading.Thread(
                target=_drain_events, args=(queue, emit), daemon=True
            )
            drain.start()
            try:
                # Shard order, re-raising the first failure.
                return [future.result() for future in futures]
            finally:
                queue.put(_SENTINEL)
                drain.join(timeout=30)


def _drain_events(queue, emit) -> None:
    while True:
        event = queue.get()
        if event is _SENTINEL:
            return
        emit(event)
