"""The study runtime: one factory wiring the whole deployment.

Every front end used to repeat the same assembly — build a world
scenario, wrap it in a search population, stand up the simulated
Trends service, build the fetcher fleet and database, hand the manager
to :class:`repro.core.pipeline.Sift`.  :meth:`StudyRuntime.build` is
that wiring, once, with the execution knobs on top:

* ``max_workers`` — per-geography parallelism (serial by default;
  results are byte-identical at any worker count for a fixed seed);
* ``database`` — ``":memory:"`` or a file path; file-backed runtimes
  checkpoint each finished geography and **resume** interrupted
  studies without recrawling;
* ``checkpoint`` — disable persistence entirely when a run must not
  reuse earlier results;
* ``progress`` — a structured-event listener
  (:mod:`repro.core.progress`) consumed by the CLI, the web interface,
  and the benchmarks.

A hand-built :class:`repro.world.Scenario` (or population) can be
injected for testbed experiments; the study window then defaults to
the scenario's.
"""

from __future__ import annotations

import dataclasses
from datetime import datetime
from types import TracebackType

from repro.collection.database import CollectionDatabase
from repro.collection.scheduler import CollectionManager, CrawlReport
from repro.core.pipeline import (
    Sift,
    SiftConfig,
    StateResult,
    StudyCheckpoint,
    StudyResult,
)
from repro.core.progress import ProgressListener
from repro.errors import ConfigurationError
from repro.runtime.checkpoint import DatabaseCheckpoint
from repro.runtime.executor import StudyExecutor, make_executor
from repro.store import ColumnarStore
from repro.streaming.config import StreamConfig
from repro.timeutil import TimeWindow, utc
from repro.trends.faults import (
    PROFILES,
    FaultPlan,
    FaultProfile,
    FaultReport,
    FaultyTrendsService,
)
from repro.trends.ratelimit import RateLimitConfig, SimulatedClock
from repro.trends.service import TrendsConfig, TrendsService
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig
from repro.world.states import STATES

#: The paper's study window: 1 Jan 2020 - 31 Dec 2021.
STUDY_START: datetime = utc(2020, 1, 1)
STUDY_END: datetime = utc(2022, 1, 1)

#: All 51 Trends geographies of the study (50 states + DC).
ALL_GEOS: tuple[str, ...] = tuple(state.geo for state in STATES)


@dataclasses.dataclass(frozen=True, slots=True)
class RuntimeConfig:
    """Parameters of a simulated deployment plus its execution policy."""

    background_scale: float = 0.15
    seed: int = 20221025
    fetcher_count: int = 4
    #: Generous limits keep simulated crawls fast; tighten them to study
    #: the scheduler under pressure (see the collection tests).
    requests_per_second: float = 50.0
    burst: int = 500
    #: Fraction of the search database the simulated Trends service
    #: samples per request (the service default mirrors the real
    #: service's behaviour).  Lower values mean noisier renditions —
    #: the reconstruction-quality benchmark's "noisy sampling" profile
    #: stresses the averaging backends through this knob.
    sample_rate: float = 0.03
    sift: SiftConfig = dataclasses.field(default_factory=SiftConfig)
    start: datetime = STUDY_START
    end: datetime = STUDY_END
    #: Workers analyzing geographies concurrently (1 = serial study).
    max_workers: int = 1
    #: Where those workers run: ``"auto"`` (serial for one worker, a
    #: thread pool otherwise), ``"serial"``, ``"thread"``, or
    #: ``"process"`` (geography-sharded worker processes).  Results are
    #: byte-identical across kinds and worker counts for a fixed seed.
    executor: str = "auto"
    #: ``":memory:"`` or a sqlite file path (enables durable resume).
    database: str = ":memory:"
    #: Optional columnar store directory (:class:`repro.store.ColumnarStore`).
    #: When set, per-geography checkpoints land there (memory-mapped
    #: ``.npy`` columns + manifest) instead of the sqlite tables, and
    #: the serving layer can load the finished study zero-copy.
    store: str | None = None
    #: Persist per-geography results and resume completed geographies.
    checkpoint: bool = True
    #: Chaos: a profile name from :data:`repro.trends.faults.PROFILES`
    #: (or a :class:`FaultProfile`) to inject into the Trends service;
    #: ``None`` runs fault-free.
    faults: str | FaultProfile | None = None
    #: Seed of the fault plan; ``(faults, fault_seed)`` fully determines
    #: every injected fault, so any chaos run can be replayed exactly.
    fault_seed: int = 7
    #: Streaming knobs for :meth:`StudyRuntime.stream_daemon` (``sift
    #: watch``); ignored by batch studies.
    stream: StreamConfig = dataclasses.field(default_factory=StreamConfig)


class StudyRuntime:
    """A fully-wired SIFT deployment: world, service, crawler, pipeline."""

    def __init__(
        self,
        config: RuntimeConfig | None = None,
        progress: ProgressListener | None = None,
        scenario: Scenario | None = None,
        population: SearchPopulation | None = None,
    ) -> None:
        self.config = config or RuntimeConfig()
        config = self.config
        self.scenario = scenario or Scenario.build(
            ScenarioConfig(
                start=config.start,
                end=config.end,
                seed=config.seed,
                background_scale=config.background_scale,
            )
        )
        self.population = population or SearchPopulation(
            self.scenario, noise_seed=config.seed + 1
        )
        self.clock = SimulatedClock()
        self.service = TrendsService(
            self.population,
            TrendsConfig(
                sample_rate=config.sample_rate,
                rate_limit=RateLimitConfig(
                    burst=config.burst,
                    refill_per_second=config.requests_per_second,
                ),
            ),
            clock=self.clock,
        )
        service = self.service
        if config.faults is not None:
            profile = config.faults
            if isinstance(profile, str):
                if profile not in PROFILES:
                    raise ConfigurationError(
                        f"unknown fault profile {profile!r}; "
                        f"choose from {sorted(PROFILES)}"
                    )
                profile = PROFILES[profile]
            service = FaultyTrendsService(
                self.service,
                FaultPlan(profile, config.fault_seed),
                sleep=self.clock.sleep,
            )
        self.database = CollectionDatabase(config.database)
        self.manager = CollectionManager(
            service,
            sleep=self.clock.sleep,
            fetcher_count=config.fetcher_count,
            database=self.database,
            clock=self.clock,
        )
        self.executor: StudyExecutor = make_executor(
            config.max_workers, config.executor
        )
        self.store: ColumnarStore | None = (
            ColumnarStore(
                config.store,
                term=config.sift.term,
                stitcher=config.sift.stitcher,
                averager=config.sift.averager,
            )
            if config.store is not None
            else None
        )
        if config.checkpoint:
            # The columnar store, when configured, is the checkpoint
            # backend; the sqlite tables otherwise.
            self.checkpoint: StudyCheckpoint | None = (
                self.store
                if self.store is not None
                else DatabaseCheckpoint(
                    self.database,
                    term=config.sift.term,
                    stitcher=config.sift.stitcher,
                    averager=config.sift.averager,
                )
            )
        else:
            self.checkpoint = None
        if self.executor.shards_study:
            # Process executors rebuild workers from the config and
            # merge shard partitions into these parent stores.
            self.executor.configure(
                config, database=self.database, store=self.store
            )
        self.sift = Sift(
            self.manager,
            config.sift,
            progress=progress,
            executor=self.executor,
            checkpoint=self.checkpoint,
        )

    @classmethod
    def build(
        cls,
        background_scale: float = 0.15,
        seed: int = 20221025,
        fetcher_count: int = 4,
        max_workers: int = 1,
        executor: str = "auto",
        database: str = ":memory:",
        store: str | None = None,
        checkpoint: bool = True,
        sift: SiftConfig | None = None,
        start: datetime | None = None,
        end: datetime | None = None,
        requests_per_second: float = 50.0,
        burst: int = 500,
        sample_rate: float = 0.03,
        progress: ProgressListener | None = None,
        scenario: Scenario | None = None,
        population: SearchPopulation | None = None,
        faults: str | FaultProfile | None = None,
        fault_seed: int = 7,
        stream: StreamConfig | None = None,
    ) -> "StudyRuntime":
        """Assemble a deployment with sensible defaults.

        When a prebuilt *scenario* (or *population*) is injected, the
        study window defaults to the scenario's own window.
        """
        if population is not None and scenario is None:
            scenario = population.scenario
        if scenario is not None:
            start = start or scenario.window.start
            end = end or scenario.window.end
        return cls(
            RuntimeConfig(
                background_scale=background_scale,
                seed=seed,
                fetcher_count=fetcher_count,
                requests_per_second=requests_per_second,
                burst=burst,
                sample_rate=sample_rate,
                sift=sift or SiftConfig(),
                start=start or STUDY_START,
                end=end or STUDY_END,
                max_workers=max_workers,
                executor=executor,
                database=database,
                store=store,
                checkpoint=checkpoint,
                faults=faults,
                fault_seed=fault_seed,
                stream=stream or StreamConfig(),
            ),
            progress=progress,
            scenario=scenario,
            population=population,
        )

    # -- running ---------------------------------------------------------------

    @property
    def window(self) -> TimeWindow:
        return TimeWindow(self.config.start, self.config.end)

    @property
    def executor_kind(self) -> str:
        """The resolved executor kind (``"auto"`` never leaks out)."""
        return self.executor.kind

    def execution_info(self) -> dict:
        """The execution policy, as ``/api/runtime`` reports it."""
        return {
            "executor": self.executor.kind,
            "max_workers": self.executor.max_workers,
            "database": self.config.database,
            "store": self.config.store,
            "checkpoint": self.config.checkpoint,
        }

    def run_study(
        self,
        geos: tuple[str, ...] | list[str] | None = None,
        window: TimeWindow | None = None,
    ) -> StudyResult:
        """Run the full SIFT study (defaults: all geos, full window)."""
        study = self.sift.run_study(
            tuple(geos) if geos is not None else ALL_GEOS,
            window or self.window,
        )
        if self.store is not None:
            # Stamp study-wide results so the store alone can serve the
            # finished study (QueryIndex.from_store) with the original
            # fingerprint.
            self.store.record_summary(study)
        return study

    def stream_daemon(
        self,
        geos: tuple[str, ...] | list[str] | None = None,
        app=None,
        stream: StreamConfig | None = None,
    ):
        """An incremental :class:`repro.streaming.StudyDaemon` over this
        runtime's pipeline (defaults: all geos, ``config.stream``).

        The daemon shares the runtime's collection layer (crawl cache,
        fault plan, fetcher fleet) and checkpoints stream state into the
        runtime's columnar store when one is configured, so a killed
        watcher resumes mid-stream with zero refetch.  Pass a
        :class:`repro.web.app.SiftWebApp` as *app* to receive delta
        snapshot installs on every tick.
        """
        from repro.streaming.daemon import StudyDaemon  # deferred: heavy

        return StudyDaemon(
            self,
            tuple(geos) if geos is not None else ALL_GEOS,
            stream=stream,
            app=app,
        )

    def supervise(
        self,
        geos: tuple[str, ...] | list[str] | None = None,
        *,
        config=None,
        stream: StreamConfig | None = None,
        app=None,
        chaos=None,
    ):
        """A self-healing :class:`repro.streaming.DaemonSupervisor` over
        this runtime's stream daemon (defaults: all geos).

        The supervisor verifies the columnar store on every (re)spawn —
        quarantining damaged geo partitions and re-crawling just those
        geos — runs each tick under a virtual-time watchdog, restarts
        failed ticks from the last checkpoint with seeded-jitter
        backoff, and exposes its ``healthy → degraded → halted`` state
        for the web layer's ``/healthz`` / ``/readyz`` probes.  *config*
        is a :class:`repro.streaming.SupervisorConfig`; *chaos* a
        :class:`repro.streaming.ProcessChaos` for seeded soak testing.
        """
        from repro.streaming.supervisor import DaemonSupervisor  # deferred

        return DaemonSupervisor(
            self,
            tuple(geos) if geos is not None else ALL_GEOS,
            config=config,
            stream=stream,
            app=app,
            chaos=chaos,
        )

    def analyze_state(self, geo: str, window: TimeWindow | None = None) -> StateResult:
        """Single-geography pipeline run over the study window."""
        return self.sift.analyze_state(geo, window or self.window)

    def report(self) -> CrawlReport:
        """Lifetime crawl accounting for this runtime's collection layer.

        Under the process executor the crawl happens inside worker
        processes, invisible to the parent's collection layer; their
        forwarded per-shard :class:`~repro.core.progress.CrawlStats`
        are folded in so the report covers the whole study regardless
        of executor.  ``elapsed_seconds`` sums per-process crawl time
        (shards overlap in wall-clock), and ``per_fetcher`` stays
        parent-side — worker fleets are private to their processes.
        """
        report = self.manager.report()
        worker_crawl = getattr(self.executor, "worker_crawl", None)
        if not worker_crawl:
            return report
        return dataclasses.replace(
            report,
            requested=report.requested + sum(s.requested for s in worker_crawl),
            fetched=report.fetched + sum(s.fetched for s in worker_crawl),
            served_from_cache=report.served_from_cache
            + sum(s.served_from_cache for s in worker_crawl),
            retries=report.retries + sum(s.retries for s in worker_crawl),
            elapsed_seconds=report.elapsed_seconds
            + sum(s.elapsed_seconds for s in worker_crawl),
            dead_lettered=report.dead_lettered
            + sum(s.dead_lettered for s in worker_crawl),
        )

    def serve_web(
        self,
        study: StudyResult,
        host: str = "127.0.0.1",
        port: int = 0,
        progress_log=None,
        **options,
    ):
        """Expose a finished study over HTTP with this runtime's
        telemetry (crawl report, fault report) wired into
        ``/api/runtime``.  Keyword *options* pass through to
        :func:`repro.web.serve` (``cache_size``, ``caching``,
        ``preload``, ``progress``); returns ``(server, thread)``.
        """
        from repro.web import serve  # deferred: keeps runtime import light

        return serve(
            study,
            host=host,
            port=port,
            progress_log=progress_log,
            crawl_report=self.report(),
            fault_report=self.fault_report(),
            execution=self.execution_info(),
            **options,
        )

    def fault_report(self) -> FaultReport | None:
        """Chaos accounting (``None`` when no faults were configured)."""
        return self.manager.fault_report()

    def completed_geos(self, window: TimeWindow | None = None) -> tuple[str, ...]:
        """Geographies already checkpointed for the study window."""
        if self.checkpoint is None:
            return ()
        return self.checkpoint.completed_geos(window or self.window)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self.database.close()

    def __enter__(self) -> "StudyRuntime":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
