"""Checkpoint metadata shared by every study-result persistence format.

Both persistence backends — the sqlite ``series``/``spikes`` tables
(:class:`repro.runtime.DatabaseCheckpoint`) and the partitioned
columnar store (:class:`repro.store.ColumnarStore`) — stamp a stored
per-geography result with the same metadata record: the study window,
the averaging diagnostics, and the reconstruction backend that built
it.  Keeping the build/parse logic here (and only here) is what makes
the formats interoperable: a checkpoint can be copied between formats
byte-for-byte and a resume behaves identically whichever store serves
it — a window mismatch re-analyzes, a backend mismatch refuses loudly.
"""

from __future__ import annotations

from datetime import datetime

import numpy as np

from repro.core.averaging import AveragingResult
from repro.core.pipeline import StateResult
from repro.core.series import HourlyTimeline
from repro.core.spikes import Spike, SpikeSet
from repro.core.stitching import StitchReport
from repro.errors import CheckpointMismatchError
from repro.timeutil import TimeWindow

_EMPTY_STITCH = StitchReport(frames=0, carried_ratios=0, ratios=())


def state_meta(result: StateResult, window: TimeWindow) -> dict:
    """The JSON-safe metadata stamped on a stored per-geography result."""
    averaging = result.averaging
    return {
        "window_start": window.start.isoformat(),
        "window_end": window.end.isoformat(),
        "rounds_used": averaging.rounds_used,
        "converged": averaging.converged,
        "similarity_history": list(averaging.similarity_history),
        "stitcher": averaging.stitcher,
        "averager": averaging.averager,
        "stitch_report": averaging.stitch_report.to_dict(),
    }


def window_matches(meta: dict, window: TimeWindow) -> bool:
    """Whether a stored result belongs to *window* (else: re-analyze)."""
    return (
        meta.get("window_start") == window.start.isoformat()
        and meta.get("window_end") == window.end.isoformat()
    )


def require_backend(
    meta: dict,
    geo: str,
    stitcher: str,
    averager: str,
    default_stitcher: str,
    default_averager: str,
) -> tuple[str, str]:
    """The stored backend pair, refusing a mismatch loudly.

    Checkpoints written before backends existed load as the defaults;
    anything else must match the resuming study's configuration —
    silently mixing timelines produced under different calibration
    semantics would corrupt the study.
    """
    stored_stitcher = meta.get("stitcher", default_stitcher)
    stored_averager = meta.get("averager", default_averager)
    if stored_stitcher != stitcher or stored_averager != averager:
        raise CheckpointMismatchError(
            f"checkpoint for {geo!r} was built with "
            f"stitcher={stored_stitcher!r}/averager={stored_averager!r} "
            f"but this study is configured with "
            f"stitcher={stitcher!r}/averager={averager!r}; "
            f"rerun with the stored backend or use a fresh database"
        )
    return stored_stitcher, stored_averager


def restore_state(
    term: str,
    geo: str,
    start: datetime,
    values: np.ndarray,
    meta: dict,
    spikes: SpikeSet,
    stitcher: str,
    averager: str,
) -> StateResult:
    """Rebuild a :class:`StateResult` from its stored pieces."""
    timeline = HourlyTimeline(term=term, geo=geo, start=start, values=values)
    report_meta = meta.get("stitch_report")
    report = (
        StitchReport.from_dict(report_meta)
        if report_meta is not None
        else _EMPTY_STITCH
    )
    averaging = AveragingResult(
        timeline=timeline,
        spikes=spikes,
        rounds_used=int(meta.get("rounds_used", 0)),
        converged=bool(meta.get("converged", False)),
        similarity_history=tuple(meta.get("similarity_history", ())),
        stitch_report=report,
        responses=(),
        stitcher=stitcher,
        averager=averager,
    )
    return StateResult(geo=geo, timeline=timeline, spikes=spikes, averaging=averaging)


def spikes_to_dicts(spikes) -> list[dict]:
    """JSON rows for a spike collection (manifest storage)."""
    return [spike.to_dict() for spike in spikes]


def spikes_from_dicts(rows: list[dict]) -> SpikeSet:
    return SpikeSet([Spike.from_dict(row) for row in rows])
