"""Partitioned columnar study store: per-geo ``.npy`` columns + manifest.

Per-study sqlite keeps whole series as JSON text — loading one is a
parse-and-materialize of every value, and the web index then copies
the floats again.  At the target scale (51 geographies × 2 years ×
the full term catalog) that materialization is the dominant load cost,
so this store keeps each geography's hourly series as a raw
little-endian ``.npy`` column file that :func:`numpy.load` can
**memory-map zero-copy**, plus one small JSON manifest holding
everything else (study window, reconstruction backend, averaging
diagnostics, spikes):

```
<root>/
  manifest.json          # format, term, per-geo entries, study summary
  series/
    US-TX.npy            # float64 hourly column, mmap-loadable
    US-CA.npy
    ...
```

The store implements the study-checkpoint protocol
(:class:`repro.core.pipeline.StudyCheckpoint`), so a runtime can
checkpoint into it directly (``RuntimeConfig.store``), resume from it
with zero refetches, and hand it to the serving layer where
:class:`repro.web.index.QueryIndex` builds its read artifacts over the
memory-mapped columns without materializing the raw series.

Interop with the sqlite format is first-class:
:meth:`ColumnarStore.import_database` / :meth:`export_database` copy
checkpoints between formats losslessly (both stamp the shared metadata
record of :mod:`repro.store.meta`), so a study checkpointed in one
format resumes from the other.

Process-sharded studies write one private partition per shard
(``<root>/.shard-<k>``) and the parent merges them deterministically —
shard order, geo-sorted manifest — via :meth:`merge_partition`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import threading
from datetime import datetime

import numpy as np

from repro.core.area import AreaConfig, group_outages
from repro.core.pipeline import StateResult, StudyCheckpoint, StudyResult
from repro.core.reconstruct import DEFAULT_AVERAGER, DEFAULT_STITCHER
from repro.core.spikes import SpikeSet
from repro.errors import DatabaseError
from repro.store.integrity import (
    PartitionDamage,
    StoreVerification,
    digest_file,
    fsync_directory,
)
from repro.store.meta import (
    require_backend,
    restore_state,
    spikes_from_dicts,
    spikes_to_dicts,
    state_meta,
    window_matches,
)
from repro.timeutil import TimeWindow

FORMAT = "sift-columnar/1"
MANIFEST = "manifest.json"
SERIES_DIR = "series"


class ColumnarStore(StudyCheckpoint):
    """A directory of memory-mapped per-geo series + a JSON manifest."""

    def __init__(
        self,
        root: str,
        term: str = "Internet outage",
        stitcher: str = DEFAULT_STITCHER,
        averager: str = DEFAULT_AVERAGER,
        mmap: bool = True,
    ) -> None:
        self.root = root
        self.term = term
        self.stitcher = stitcher
        self.averager = averager
        #: ``False`` loads materialized copies (for callers that must
        #: outlive the store directory); the default maps pages lazily.
        self.mmap = mmap
        self._lock = threading.Lock()
        os.makedirs(os.path.join(root, SERIES_DIR), exist_ok=True)
        #: ``*.tmp`` leftovers from interrupted writes, removed on open
        #: before they can ever be mistaken for partitions.
        self.swept = self.sweep_tmp()

    # -- manifest ------------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST)

    def _read_manifest(self) -> dict:
        path = self._manifest_path()
        if not os.path.exists(path):
            return {"format": FORMAT, "term": self.term, "geos": {}}
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != FORMAT:
            raise DatabaseError(
                f"{path} is not a {FORMAT} manifest "
                f"(found {manifest.get('format')!r})"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        """Durable atomic replace: tmp → fsync → rename → dir fsync.

        A reader never sees a half-written manifest, and a crash at any
        point leaves either the old manifest or the new one on disk —
        never a torn blend, never a rename rolled back by a power cut.
        """
        path = self._manifest_path()
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_directory(self.root)

    def _column_path(self, geo: str) -> str:
        return os.path.join(self.root, SERIES_DIR, f"{geo}.npy")

    def _write_npy(self, path: str, values: np.ndarray) -> tuple[str, int]:
        """Durably write one ``.npy`` column; return (digest, bytes).

        The digest is taken over the fsynced tmp bytes *before* the
        rename, so the manifest entry that follows describes exactly
        the bytes that became the partition.
        """
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            np.save(handle, np.ascontiguousarray(values, dtype=np.float64))
            handle.flush()
            os.fsync(handle.fileno())
        checksum, size = digest_file(tmp)
        os.replace(tmp, path)
        fsync_directory(os.path.dirname(path))
        return checksum, size

    def _write_column(self, geo: str, values: np.ndarray) -> tuple[str, int]:
        return self._write_npy(self._column_path(geo), values)

    def _load_column(self, geo: str) -> np.ndarray:
        return np.load(
            self._column_path(geo), mmap_mode="r" if self.mmap else None
        )

    # -- the StudyCheckpoint protocol ----------------------------------------

    def save_state(self, result: StateResult, window: TimeWindow) -> None:
        """Persist one geography: column file first, then the manifest.

        The manifest entry doubles as the completion marker (exactly
        like the sqlite series row), so an interrupt between the two
        writes can never leave a checkpoint that looks complete.
        """
        with self._lock:
            digest, nbytes = self._write_column(result.geo, result.timeline.values)
            manifest = self._read_manifest()
            manifest["geos"][result.geo] = {
                "file": f"{SERIES_DIR}/{result.geo}.npy",
                "start": result.timeline.start.isoformat(),
                "hours": len(result.timeline),
                "dtype": "float64",
                "digest": digest,
                "bytes": nbytes,
                "meta": state_meta(result, window),
                "spikes": spikes_to_dicts(result.spikes),
            }
            self._write_manifest(manifest)

    def load_state(self, geo: str, window: TimeWindow) -> StateResult | None:
        entry = self._read_manifest()["geos"].get(geo)
        if entry is None:
            return None
        meta = entry["meta"]
        if not window_matches(meta, window):
            return None
        stitcher, averager = require_backend(
            meta, geo, self.stitcher, self.averager,
            DEFAULT_STITCHER, DEFAULT_AVERAGER,
        )
        return restore_state(
            term=self.term,
            geo=geo,
            start=datetime.fromisoformat(entry["start"]),
            values=self._load_column(geo),
            meta=meta,
            spikes=spikes_from_dicts(entry["spikes"]),
            stitcher=stitcher,
            averager=averager,
        )

    def save_annotated(self, spikes: SpikeSet) -> None:
        """Overwrite stored spikes with their final annotated versions."""
        with self._lock:
            manifest = self._read_manifest()
            by_geo: dict[str, list[dict]] = {}
            for spike in spikes:
                by_geo.setdefault(spike.geo, []).append(spike.to_dict())
            for geo, rows in by_geo.items():
                entry = manifest["geos"].get(geo)
                if entry is not None:
                    entry["spikes"] = rows
            self._write_manifest(manifest)

    def completed_geos(self, window: TimeWindow) -> tuple[str, ...]:
        """Geographies checkpointed for *window* (sorted, manifest-only)."""
        manifest = self._read_manifest()
        return tuple(
            geo
            for geo in sorted(manifest["geos"])
            if window_matches(manifest["geos"][geo]["meta"], window)
        )

    # -- study-level summary --------------------------------------------------

    def record_summary(self, study: StudyResult) -> None:
        """Stamp study-wide results the per-geo entries cannot carry.

        With a summary recorded, :meth:`load_study` reproduces the
        original :class:`StudyResult` fingerprint exactly (annotated
        spikes, heavy hitters, resumed geographies and all).
        """
        with self._lock:
            manifest = self._read_manifest()
            manifest["study"] = {
                "window_start": study.window.start.isoformat(),
                "window_end": study.window.end.isoformat(),
                "heavy_hitters": list(study.heavy_hitters),
                "suggestion_stats": list(study.suggestion_stats),
                "resumed_geos": list(study.resumed_geos),
            }
            self._write_manifest(manifest)

    def load_study(
        self, window: TimeWindow | None = None, area: AreaConfig | None = None
    ) -> StudyResult:
        """Rebuild a full :class:`StudyResult` over memory-mapped columns.

        Outage grouping re-runs over the stored spikes (it is a pure
        deterministic function of them); timelines stay memory-mapped,
        so the load materializes no series values.
        """
        manifest = self._read_manifest()
        if not manifest["geos"]:
            raise DatabaseError(f"columnar store {self.root} holds no geographies")
        summary = manifest.get("study", {})
        if window is None:
            if "window_start" in summary:
                window = TimeWindow(
                    datetime.fromisoformat(summary["window_start"]),
                    datetime.fromisoformat(summary["window_end"]),
                )
            else:
                first = next(iter(sorted(manifest["geos"])))
                meta = manifest["geos"][first]["meta"]
                window = TimeWindow(
                    datetime.fromisoformat(meta["window_start"]),
                    datetime.fromisoformat(meta["window_end"]),
                )
        states: dict[str, StateResult] = {}
        all_spikes = []
        for geo in sorted(manifest["geos"]):
            result = self.load_state(geo, window)
            if result is None:
                raise DatabaseError(
                    f"geography {geo} in {self.root} does not cover "
                    f"{window.start.isoformat()}..{window.end.isoformat()}"
                )
            states[geo] = result
            all_spikes.extend(result.spikes)
        spike_set = SpikeSet(all_spikes)
        outages = group_outages(spike_set, area or AreaConfig())
        return StudyResult(
            window=window,
            spikes=spike_set,
            outages=outages,
            states=states,
            heavy_hitters=tuple(summary.get("heavy_hitters", ())),
            suggestion_stats=tuple(summary.get("suggestion_stats", (0, 0))),
            resumed_geos=tuple(summary.get("resumed_geos", ())),
        )

    # -- streaming checkpoints -------------------------------------------------

    def _stream_column_path(self, geo: str) -> str:
        return os.path.join(self.root, SERIES_DIR, f"{geo}.stream.npy")

    def save_stream(self, state: dict, columns: dict[str, np.ndarray]) -> None:
        """Persist a mid-stream daemon checkpoint: raw columns + state.

        The raw (pre-renormalization) stitched series land as
        ``series/<geo>.stream.npy`` side files; the JSON-safe *state*
        dict (stitcher export, claimed spike bounds, tick watermark)
        goes under the manifest's ``stream`` key.  Columns are written
        before the manifest, so — exactly like :meth:`save_state` — an
        interrupt can never leave a stream entry pointing at a missing
        or stale column.
        """
        with self._lock:
            manifest = self._read_manifest()
            stream_columns = dict(manifest.get("stream_columns", {}))
            for geo in sorted(columns):
                digest, nbytes = self._write_npy(
                    self._stream_column_path(geo), columns[geo]
                )
                stream_columns[geo] = {
                    "file": f"{SERIES_DIR}/{geo}.stream.npy",
                    "digest": digest,
                    "bytes": nbytes,
                }
            # Entries for geos absent from the new state are stale
            # (e.g. a narrowed stream): drop them with their state.
            stream_columns = {
                geo: info
                for geo, info in stream_columns.items()
                if geo in state.get("geos", {})
            }
            manifest["stream"] = state
            manifest["stream_columns"] = stream_columns
            self._write_manifest(manifest)

    def load_stream(self) -> dict | None:
        """The last streamed checkpoint state, or ``None`` when fresh."""
        return self._read_manifest().get("stream")

    def load_stream_column(self, geo: str) -> np.ndarray:
        """A materialized copy of one mid-stream raw series.

        Always a private in-memory array (never a memory map): the
        resumed stitcher takes ownership and keeps appending to it
        long after the store may have rewritten the side file.
        """
        values = np.load(self._stream_column_path(geo))
        return np.ascontiguousarray(values, dtype=np.float64)

    def clear_stream(self) -> None:
        """Drop the stream checkpoint (a finished stream needs none)."""
        with self._lock:
            manifest = self._read_manifest()
            dropped = manifest.pop("stream", None) is not None
            dropped |= manifest.pop("stream_columns", None) is not None
            if dropped:
                self._write_manifest(manifest)
            stream_dir = os.path.join(self.root, SERIES_DIR)
            for name in os.listdir(stream_dir):
                if name.endswith(".stream.npy"):
                    os.remove(os.path.join(stream_dir, name))

    # -- integrity -------------------------------------------------------------

    def sweep_tmp(self) -> tuple[str, ...]:
        """Remove stale ``*.tmp`` files left behind by interrupted writes.

        Runs on open (crash recovery is the *normal* startup path, not
        an exceptional one): a tmp file that never reached its rename
        holds torn bytes and must not survive to confuse anything that
        globs the series directory.  Returns the store-relative paths
        removed.
        """
        swept: list[str] = []
        for directory in (self.root, os.path.join(self.root, SERIES_DIR)):
            if not os.path.isdir(directory):
                continue
            removed = False
            for name in sorted(os.listdir(directory)):
                if name.endswith(".tmp"):
                    os.remove(os.path.join(directory, name))
                    swept.append(
                        os.path.relpath(os.path.join(directory, name), self.root)
                    )
                    removed = True
            if removed:
                fsync_directory(directory)
        return tuple(swept)

    def _check_file(
        self,
        geo: str,
        relfile: str,
        entry: dict,
        damage: list[PartitionDamage],
    ) -> bool:
        """Hash one manifest-tracked file; append damage. True if hashed."""
        path = os.path.join(self.root, relfile)
        if not os.path.exists(path):
            damage.append(
                PartitionDamage(geo, relfile, "missing", "file absent on disk")
            )
            return False
        expected_digest = entry.get("digest")
        expected_bytes = entry.get("bytes")
        if expected_digest is None:  # legacy digest-less entry
            return False
        actual_digest, actual_bytes = digest_file(path)
        if expected_bytes is not None and actual_bytes != expected_bytes:
            kind = "truncated" if actual_bytes < expected_bytes else "digest-mismatch"
            damage.append(
                PartitionDamage(
                    geo,
                    relfile,
                    kind,
                    f"{actual_bytes} bytes on disk, manifest says "
                    f"{expected_bytes}",
                )
            )
        elif actual_digest != expected_digest:
            damage.append(
                PartitionDamage(
                    geo,
                    relfile,
                    "digest-mismatch",
                    "content hash does not match manifest",
                )
            )
        return True

    def verify(self, quarantine: bool = False) -> StoreVerification:
        """Re-hash every manifest-tracked column against its digest.

        Detects truncation, bit flips, and orphaned manifest entries
        (files missing on disk).  Entries written before digests
        existed are skipped — they cannot be verified, only trusted.

        With ``quarantine=True``, every damaged geography's files
        (study column *and* stream side file — a resume needs the pair
        consistent, so one bad half condemns both) are renamed to
        ``*.quarantine`` and the geography is stripped from the
        manifest and the stream checkpoint state; the stream state
        additionally records ``quarantined: {geo: kinds}`` so a
        resuming daemon knows those geographies were lost to damage —
        not dropped from the configuration — and re-crawls exactly
        them.  Everything undamaged remains servable untouched.
        """
        with self._lock:
            manifest = self._read_manifest()
            stream_columns = manifest.get("stream_columns", {})
            damage: list[PartitionDamage] = []
            checked = 0
            all_geos = sorted(set(manifest["geos"]) | set(stream_columns))
            for geo in all_geos:
                entry = manifest["geos"].get(geo)
                if entry is not None:
                    checked += self._check_file(geo, entry["file"], entry, damage)
                stream_entry = stream_columns.get(geo)
                if stream_entry is not None:
                    checked += self._check_file(
                        geo, stream_entry["file"], stream_entry, damage
                    )
            damaged_geos = sorted({item.geo for item in damage})
            intact = tuple(geo for geo in all_geos if geo not in damaged_geos)
            quarantined: list[str] = []
            if quarantine and damaged_geos:
                moved: set[str] = set()
                stream_state = manifest.get("stream")
                for geo in damaged_geos:
                    for relfile in (
                        f"{SERIES_DIR}/{geo}.npy",
                        f"{SERIES_DIR}/{geo}.stream.npy",
                    ):
                        path = os.path.join(self.root, relfile)
                        if os.path.exists(path):
                            os.replace(path, path + ".quarantine")
                            moved.add(relfile)
                    manifest["geos"].pop(geo, None)
                    stream_columns.pop(geo, None)
                    if stream_state is not None:
                        stream_state.get("geos", {}).pop(geo, None)
                        stream_state.setdefault("quarantined", {})[geo] = (
                            "; ".join(
                                sorted(
                                    {
                                        item.kind
                                        for item in damage
                                        if item.geo == geo
                                    }
                                )
                            )
                        )
                    quarantined.append(geo)
                fsync_directory(os.path.join(self.root, SERIES_DIR))
                self._write_manifest(manifest)
                damage = [
                    dataclasses.replace(
                        item, quarantined_to=item.file + ".quarantine"
                    )
                    if item.file in moved
                    else item
                    for item in damage
                ]
            return StoreVerification(
                checked=checked,
                intact=intact,
                damage=tuple(damage),
                quarantined=tuple(quarantined),
            )

    # -- shard partitions ------------------------------------------------------

    def partition(self, shard: int) -> "ColumnarStore":
        """A private store for one shard, inside this store's root."""
        return ColumnarStore(
            os.path.join(self.root, f".shard-{shard}"),
            term=self.term,
            stitcher=self.stitcher,
            averager=self.averager,
            mmap=self.mmap,
        )

    def merge_partition(self, root: str) -> None:
        """Absorb a shard partition: move its columns, merge its manifest.

        Partitions shard by geography so the merge is conflict-free;
        entries land geo-sorted in the rewritten manifest (dict order
        is insertion order, and the manifest is dumped with sorted
        keys anyway), making the merged store independent of shard
        completion order.  The partition directory is removed.
        """
        partition_manifest_path = os.path.join(root, MANIFEST)
        if not os.path.exists(partition_manifest_path):
            shutil.rmtree(root, ignore_errors=True)
            return  # a shard that resumed everything writes nothing
        with self._lock:
            with open(partition_manifest_path, encoding="utf-8") as handle:
                partition = json.load(handle)
            manifest = self._read_manifest()
            for geo in sorted(partition["geos"]):
                entry = partition["geos"][geo]
                os.replace(
                    os.path.join(root, entry["file"]),
                    self._column_path(geo),
                )
                entry["file"] = f"{SERIES_DIR}/{geo}.npy"
                manifest["geos"][geo] = entry
            fsync_directory(os.path.join(self.root, SERIES_DIR))
            self._write_manifest(manifest)
            shutil.rmtree(root, ignore_errors=True)

    # -- sqlite interop --------------------------------------------------------

    def import_database(self, database) -> tuple[str, ...]:
        """Copy every sqlite checkpoint for this term into the store.

        Returns the imported geographies.  The shared metadata record
        travels verbatim, so a resume from the imported store behaves
        exactly like a resume from the source database (including the
        backend-mismatch refusal).
        """
        imported = []
        for geo in database.series_geos(self.term):
            meta = database.load_series_meta(self.term, geo)
            series = database.load_series(self.term, geo)
            if meta is None or series is None:  # pragma: no cover - defensive
                continue
            start, values = series
            spikes = database.load_spikes(term=self.term, geo=geo)
            with self._lock:
                digest, nbytes = self._write_column(geo, values)
                manifest = self._read_manifest()
                manifest["geos"][geo] = {
                    "file": f"{SERIES_DIR}/{geo}.npy",
                    "start": start.isoformat(),
                    "hours": int(values.size),
                    "dtype": "float64",
                    "digest": digest,
                    "bytes": nbytes,
                    "meta": meta,
                    "spikes": spikes_to_dicts(spikes),
                }
                self._write_manifest(manifest)
            imported.append(geo)
        return tuple(imported)

    def export_database(self, database) -> tuple[str, ...]:
        """Copy every stored geography into a sqlite collection database."""
        manifest = self._read_manifest()
        exported = []
        for geo in sorted(manifest["geos"]):
            entry = manifest["geos"][geo]
            values = np.asarray(self._load_column(geo), dtype=np.float64)
            spikes = spikes_from_dicts(entry["spikes"])
            database.store_checkpoint(
                self.term,
                geo,
                datetime.fromisoformat(entry["start"]),
                values,
                entry["meta"],
                list(spikes),
            )
            exported.append(geo)
        return tuple(exported)

    # -- introspection ---------------------------------------------------------

    def geos(self) -> tuple[str, ...]:
        return tuple(sorted(self._read_manifest()["geos"]))

    def __len__(self) -> int:
        return len(self._read_manifest()["geos"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarStore({self.root!r}, term={self.term!r}, geos={len(self)})"
