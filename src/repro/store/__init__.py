"""Persistence formats for study results.

``repro.store`` deliberately imports only :mod:`repro.core` — the
runtime layer builds on the store, never the reverse — so both the
sqlite checkpoint (:class:`repro.runtime.DatabaseCheckpoint`) and the
columnar store here can share one checkpoint-metadata contract
(:mod:`repro.store.meta`) without an import cycle.
"""

from repro.store.columnar import FORMAT, MANIFEST, SERIES_DIR, ColumnarStore
from repro.store.integrity import (
    PartitionDamage,
    StoreVerification,
    digest_file,
    fsync_directory,
)
from repro.store.meta import (
    require_backend,
    restore_state,
    spikes_from_dicts,
    spikes_to_dicts,
    state_meta,
    window_matches,
)

__all__ = [
    "FORMAT",
    "MANIFEST",
    "SERIES_DIR",
    "ColumnarStore",
    "PartitionDamage",
    "StoreVerification",
    "digest_file",
    "fsync_directory",
    "require_backend",
    "restore_state",
    "spikes_from_dicts",
    "spikes_to_dicts",
    "state_meta",
    "window_matches",
]
