"""Content-integrity primitives for the columnar store.

A long-running watch loop rewrites its columnar partitions thousands of
times; a crash mid-write, a torn page, or plain bit rot must never be
mistaken for data.  The store defends in two layers:

* **Prevention** — every write goes tmp → fsync(file) → rename →
  fsync(directory), so after a crash a partition is either the old
  bytes or the new bytes, never a blend; stale ``*.tmp`` files are
  swept on open before they can shadow anything.
* **Detection** — the manifest records a content digest and byte size
  for every column it points at, and :meth:`ColumnarStore.verify`
  re-hashes the files against them on open.  Damage is reported as
  :class:`PartitionDamage` records and (optionally) **quarantined**:
  the damaged geography's files are renamed to ``*.quarantine`` and its
  manifest entries stripped, so the rest of the store stays servable
  and a supervisor can re-crawl just the lost geographies.

Digests use SHA-256 over the raw ``.npy`` bytes — the same bytes
:func:`numpy.load` maps — so a verification pass is a sequential read
with no deserialization.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os

_CHUNK = 1 << 20


def digest_bytes(data: bytes) -> str:
    """SHA-256 hex digest of an in-memory buffer."""
    return hashlib.sha256(data).hexdigest()


def digest_file(path: str) -> tuple[str, int]:
    """(SHA-256 hex digest, byte size) of a file, read in 1 MiB chunks."""
    hasher = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while chunk := handle.read(_CHUNK):
            hasher.update(chunk)
            size += len(chunk)
    return hasher.hexdigest(), size


def fsync_directory(path: str) -> None:
    """Flush a directory entry table to disk (POSIX rename durability).

    A renamed file is only crash-durable once its *directory* is
    synced; without this, a power cut can roll the rename back and
    resurrect the old (or no) file.  Platforms that cannot open a
    directory read-only (e.g. Windows) skip the sync.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclasses.dataclass(frozen=True, slots=True)
class PartitionDamage:
    """One damaged store partition found by a verification pass."""

    geo: str
    file: str  # store-relative path of the damaged file
    kind: str  # "missing" | "truncated" | "digest-mismatch"
    detail: str
    quarantined_to: str | None = None  # relative rename target, if moved

    def describe(self) -> str:
        action = (
            f" -> {self.quarantined_to}" if self.quarantined_to else ""
        )
        return f"{self.geo} {self.file}: {self.kind} ({self.detail}){action}"


@dataclasses.dataclass(frozen=True, slots=True)
class StoreVerification:
    """The outcome of one :meth:`ColumnarStore.verify` pass."""

    checked: int  # files hashed (study + stream columns)
    intact: tuple[str, ...]  # geos whose every column verified
    damage: tuple[PartitionDamage, ...]
    quarantined: tuple[str, ...]  # geos moved aside this pass

    @property
    def clean(self) -> bool:
        return not self.damage

    def damaged_geos(self) -> tuple[str, ...]:
        return tuple(sorted({item.geo for item in self.damage}))

    def describe(self) -> str:
        if self.clean:
            return f"store intact: {self.checked} columns verified"
        lines = [
            f"store damage: {len(self.damage)} findings across "
            f"{len(self.damaged_geos())} geographies "
            f"({self.checked} columns checked)"
        ]
        lines.extend("  " + item.describe() for item in self.damage)
        return "\n".join(lines)
