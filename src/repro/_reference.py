"""Frozen scalar reference implementations of the simulator hot path.

The modules under :mod:`repro.world` and :mod:`repro.trends` serve
frames from vectorized population tensors (see DESIGN.md §Performance).
This module preserves the original per-term / per-hour scalar
implementations **verbatim** so that

* the equivalence tests (``tests/test_vectorized_equivalence.py``) can
  assert the vectorized paths are *byte-identical* to the semantics the
  rest of the pipeline was validated against, and
* the perf harness (``benchmarks/bench_service_hotpath.py``) can report
  a hardware-independent speedup ratio against the scalar baseline.

Nothing in the production pipeline imports this module; it exists only
as an executable contract.  Do not "optimize" it — its slowness is the
point.
"""

from __future__ import annotations

import collections
from datetime import timedelta

import numpy as np

from repro.rand import hashed_normal, hashed_uniform, substream
from repro.timeutil import TimeWindow, hour_index
from repro.trends.records import (
    BREAKOUT_WEIGHT,
    RisingTerm,
    TimeFrameRequest,
    TimeFrameResponse,
)
from repro.trends.rising import RisingConfig
from repro.trends.sampling import index_frame, privacy_round, sample_counts
from repro.world.behavior import (
    DEFAULT_BEHAVIOR,
    BehaviorConfig,
    diurnal_curve,
    event_boost,
    term_baseline_per_hour,
)
from repro.world.catalog import TERMS, get_term
from repro.world.scenarios import Scenario
from repro.world.states import get_state

_CACHE_LIMIT = 512


def reference_stable_key(*parts: object) -> int:
    """Original byte-at-a-time FNV-1a fold of ``repro.rand.stable_key``."""
    acc = 0xCBF29CE484222325
    for part in parts:
        data = str(part).encode("utf-8") + b"\x1f"
        for byte in data:
            acc ^= byte
            acc = (acc * 0x100000001B3) % (1 << 64)
    return acc


def reference_local_diurnal(state_code: str, window: TimeWindow) -> np.ndarray:
    """Original one-``astimezone``-per-hour diurnal curve lookup."""
    state = get_state(state_code)
    tz = state.tzinfo
    curve = diurnal_curve()
    values = np.empty(window.hours, dtype=np.float64)
    moment = window.start
    for i in range(window.hours):
        values[i] = curve[moment.astimezone(tz).hour]
        moment += timedelta(hours=1)
    return values


def reference_variant_phrase(
    term_name: str, variants: tuple[str, ...], key: int
) -> str:
    """Original phrase pick: a 1-element array round-trip through
    :func:`repro.rand.hashed_uniform`."""
    phrasings = (term_name, *variants)
    pick = hashed_uniform(key, np.array([1], dtype=np.uint64))[0]
    return phrasings[int(pick * len(phrasings)) % len(phrasings)]


class ReferencePopulation:
    """The pre-tensor :class:`~repro.world.population.SearchPopulation`.

    One scalar ``_compute_series`` call per (term, state), an LRU of
    full-span series, per-state diurnal/response caches — exactly the
    shape of the original implementation.
    """

    def __init__(
        self,
        scenario: Scenario,
        behavior: BehaviorConfig = DEFAULT_BEHAVIOR,
        noise_seed: int = 7,
    ) -> None:
        self.scenario = scenario
        self.behavior = behavior
        self.noise_seed = noise_seed
        self._span = scenario.window
        self._series_cache: collections.OrderedDict[tuple[str, str], np.ndarray] = (
            collections.OrderedDict()
        )
        self._diurnal_cache: dict[str, np.ndarray] = {}
        self._response_cache: dict[str, np.ndarray] = {}

    @property
    def window(self) -> TimeWindow:
        return self._span

    def term_volume(
        self, term_name: str, state_code: str, window: TimeWindow
    ) -> np.ndarray:
        get_term(term_name)  # raise UnknownTermError early
        full = self._full_series(term_name, get_state(state_code).code)
        lo, hi = self._clip(window)
        return full[lo:hi].copy()

    def total_volume(self, state_code: str, window: TimeWindow) -> np.ndarray:
        state = get_state(state_code)
        diurnal = self._diurnal(state.code)
        lo, hi = self._clip(window)
        base = state.population * self.behavior.engagement_per_capita
        return base * diurnal[lo:hi]

    def volumes_matrix(
        self, term_names: tuple[str, ...], state_code: str, window: TimeWindow
    ) -> np.ndarray:
        rows = [self.term_volume(name, state_code, window) for name in term_names]
        return np.vstack(rows) if rows else np.empty((0, window.hours))

    def _clip(self, window: TimeWindow) -> tuple[int, int]:
        lo = hour_index(self._span.start, window.start)
        hi = hour_index(self._span.start, window.end)
        if lo < 0 or hi > self._span.hours:
            raise ValueError(
                f"window {window.start}..{window.end} outside scenario span"
            )
        return lo, hi

    def _diurnal(self, code: str) -> np.ndarray:
        series = self._diurnal_cache.get(code)
        if series is None:
            series = reference_local_diurnal(code, self._span)
            self._diurnal_cache[code] = series
        return series

    def _response(self, code: str) -> np.ndarray:
        series = self._response_cache.get(code)
        if series is None:
            diurnal = self._diurnal(code)
            floor = self.behavior.night_response_floor
            series = floor + (1.0 - floor) * diurnal
            self._response_cache[code] = series
        return series

    def _full_series(self, term_name: str, code: str) -> np.ndarray:
        key = (term_name, code)
        cached = self._series_cache.get(key)
        if cached is not None:
            self._series_cache.move_to_end(key)
            return cached
        series = self._compute_series(term_name, code)
        self._series_cache[key] = series
        if len(self._series_cache) > _CACHE_LIMIT:
            self._series_cache.popitem(last=False)
        return series

    def _compute_series(self, term_name: str, code: str) -> np.ndarray:
        hours = self._span.hours
        baseline = term_baseline_per_hour(term_name, code) * self._diurnal(code)
        noise_key = reference_stable_key(self.noise_seed, term_name, code)
        noise = np.exp(
            self.behavior.noise_sigma * hashed_normal(noise_key, np.arange(hours))
        )
        series = baseline * noise
        response = self._response(code)
        for event in self.scenario.events_in_state(code):
            boost = event_boost(event, term_name, code, self._span, self.behavior)
            if boost is not None:
                series = series + boost * response
        return series


def reference_rising_terms(
    population,
    request: TimeFrameRequest,
    rng: np.random.Generator,
    sample_rate: float,
    config: RisingConfig | None = None,
) -> tuple[RisingTerm, ...]:
    """Original per-term Python loop with four scalar ``.sum()`` calls
    and two scalar binomial draws per candidate."""
    config = config or RisingConfig()
    state = get_state(request.geo)
    window = request.window
    previous = window.shift(-window.hours)
    if previous.start < population.window.start:
        return ()  # no preceding period to compare against
    suggestions: list[RisingTerm] = []
    total_now = float(population.total_volume(state.code, window).sum())
    total_prev = float(population.total_volume(state.code, previous).sum())
    size_now = max(int(round(total_now * sample_rate)), 1)
    size_prev = max(int(round(total_prev * sample_rate)), 1)
    for term in TERMS:
        if term.name == request.term:
            continue
        volume_now = float(population.term_volume(term.name, state.code, window).sum())
        volume_prev = float(
            population.term_volume(term.name, state.code, previous).sum()
        )
        count_now = int(
            rng.binomial(size_now, min(volume_now / max(total_now, 1e-9), 1.0))
        )
        count_prev = int(
            rng.binomial(size_prev, min(volume_prev / max(total_prev, 1e-9), 1.0))
        )
        if count_now < config.min_window_count:
            continue  # anonymity: the term is invisible this window
        share_now = count_now / size_now
        share_prev = count_prev / size_prev
        if share_prev <= 0:
            weight = BREAKOUT_WEIGHT
        else:
            weight = int(round(100.0 * (share_now - share_prev) / share_prev))
        if weight < config.min_weight:
            continue
        phrase_key = reference_stable_key(
            "rising-phrase", term.name, request.geo, window.start.isoformat()
        )
        suggestions.append(
            RisingTerm(
                phrase=reference_variant_phrase(term.name, term.variants, phrase_key),
                weight=min(weight, BREAKOUT_WEIGHT),
            )
        )
    suggestions.sort(key=lambda item: item.weight, reverse=True)
    return tuple(suggestions[: config.top_k])


def reference_fetch(
    population,
    request: TimeFrameRequest,
    sample_round: int,
    *,
    seed: int = 99,
    sample_rate: float = 0.03,
    privacy_threshold: int = 3,
    rising_config: RisingConfig | None = None,
    include_rising: bool = True,
) -> TimeFrameResponse:
    """The original ``TrendsService.fetch`` data path (no rate limiting,
    no stats) with per-fetch substream setup recomputed from scratch."""
    state = get_state(request.geo)
    rng = substream(seed, "frame", request.cache_key, sample_round)
    volumes = population.term_volume(request.term, state.code, request.window)
    totals = population.total_volume(state.code, request.window)
    counts = sample_counts(rng, volumes, totals, sample_rate)
    counts = privacy_round(counts, privacy_threshold)
    sizes = np.maximum(np.round(totals * sample_rate), 1.0).astype(np.int64)
    values = index_frame(counts, sizes)
    rising: tuple[RisingTerm, ...] = ()
    if include_rising:
        rising_rng = substream(seed, "rising", request.cache_key, sample_round)
        rising = reference_rising_terms(
            population, request, rising_rng, sample_rate, rising_config
        )
    return TimeFrameResponse(
        request=request, values=values, rising=rising, sample_round=sample_round
    )
