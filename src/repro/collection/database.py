"""Backend database for the collection module.

The paper's implementation keeps a backend database into which the
responses gathered by the fetcher units are merged.  This is a thin
sqlite3 layer (``:memory:`` by default, a file path for persistence)
storing raw frame responses, reconstructed series, and detected spikes,
so a crawl can be interrupted, resumed, and analyzed offline.

Concurrency model: the store is safe to use from many threads at once.

* **File-backed** paths get one connection *per thread* (sqlite
  connections are not thread-safe), WAL journaling so readers never
  block behind writers, and a generous busy timeout so concurrent
  writers serialize instead of failing.
* **In-memory** databases cannot share pages across connections, so a
  single connection is shared behind a lock instead.

``store_frames`` batches many frame inserts into one transaction —
the fast path for bulk crawls — and ``store_checkpoint`` persists a
geography's series + spikes atomically, which is what makes interrupted
studies resumable: the series row only appears once the whole
geography committed.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import threading
from collections.abc import Iterator
from datetime import datetime
from types import TracebackType

import numpy as np

from repro.core.spikes import Spike
from repro.errors import DatabaseError
from repro.timeutil import TimeWindow
from repro.trends.records import RisingTerm, TimeFrameRequest, TimeFrameResponse

_SCHEMA = """
CREATE TABLE IF NOT EXISTS frames (
    term TEXT NOT NULL,
    geo TEXT NOT NULL,
    start TEXT NOT NULL,
    end TEXT NOT NULL,
    sample_round INTEGER NOT NULL,
    values_json TEXT NOT NULL,
    rising_json TEXT NOT NULL,
    fetched_by TEXT NOT NULL,
    PRIMARY KEY (term, geo, start, end, sample_round)
);
CREATE TABLE IF NOT EXISTS series (
    term TEXT NOT NULL,
    geo TEXT NOT NULL,
    start TEXT NOT NULL,
    values_json TEXT NOT NULL,
    meta_json TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (term, geo)
);
CREATE TABLE IF NOT EXISTS spikes (
    term TEXT NOT NULL,
    geo TEXT NOT NULL,
    start TEXT NOT NULL,
    peak TEXT NOT NULL,
    end TEXT NOT NULL,
    magnitude REAL NOT NULL,
    magnitude_rank INTEGER NOT NULL,
    annotations_json TEXT NOT NULL,
    PRIMARY KEY (term, geo, peak)
);
"""

_BUSY_TIMEOUT_MS = 30_000


class CollectionDatabase:
    """Stores crawled frames, stitched series, and detected spikes."""

    def __init__(self, path: str = ":memory:") -> None:
        self._path = path
        self._shared_memory = ":memory:" in path or path == ""
        self._lock = threading.RLock()
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._closed = False
        if self._shared_memory:
            self._shared: sqlite3.Connection | None = sqlite3.connect(
                path, check_same_thread=False
            )
            self._shared.executescript(_SCHEMA)
            self._shared.commit()
        else:
            self._shared = None
            with self._connect() as conn:  # create the schema eagerly
                conn.execute("SELECT 1")

    # -- connections -------------------------------------------------------------

    def _thread_connection(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            try:
                conn = sqlite3.connect(self._path)
            except sqlite3.OperationalError as error:
                raise DatabaseError(
                    f"cannot open database {self._path!r}: {error}"
                ) from error
            conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            conn.commit()
            self._local.conn = conn
            with self._lock:
                if self._closed:
                    self._local.conn = None
                    conn.close()
                    raise DatabaseError(f"database {self._path} is closed")
                self._connections.append(conn)
        return conn

    @contextlib.contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """The calling thread's connection, serialized for shared memory."""
        if self._closed:
            raise DatabaseError(f"database {self._path} is closed")
        if self._shared is not None:
            with self._lock:
                yield self._shared
        else:
            yield self._thread_connection()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._shared is not None:
                self._shared.close()
                self._shared = None
                return
            for conn in self._connections:
                with contextlib.suppress(sqlite3.Error):
                    conn.close()
            self._connections.clear()
            self._local = threading.local()

    def __enter__(self) -> "CollectionDatabase":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # -- frames ------------------------------------------------------------------

    @staticmethod
    def _frame_row(response: TimeFrameResponse, fetched_by: str) -> tuple:
        request = response.request
        rising = [[term.phrase, term.weight] for term in response.rising]
        return (
            request.term,
            request.geo,
            request.window.start.isoformat(),
            request.window.end.isoformat(),
            response.sample_round,
            json.dumps(response.values.tolist()),
            json.dumps(rising),
            fetched_by,
        )

    def store_frame(self, response: TimeFrameResponse, fetched_by: str) -> None:
        try:
            with self._connect() as conn:
                conn.execute(
                    "INSERT OR REPLACE INTO frames VALUES (?,?,?,?,?,?,?,?)",
                    self._frame_row(response, fetched_by),
                )
                conn.commit()
        except sqlite3.Error as error:
            raise DatabaseError(f"failed to store frame: {error}") from error

    def store_frames(
        self, batch: list[tuple[TimeFrameResponse, str]]
    ) -> None:
        """Merge many ``(response, fetched_by)`` pairs in one transaction."""
        if not batch:
            return
        rows = [self._frame_row(response, fetched_by) for response, fetched_by in batch]
        try:
            with self._connect() as conn:
                conn.executemany(
                    "INSERT OR REPLACE INTO frames VALUES (?,?,?,?,?,?,?,?)", rows
                )
                conn.commit()
        except sqlite3.Error as error:
            raise DatabaseError(f"failed to store frame batch: {error}") from error

    def load_frame(
        self, term: str, geo: str, window: TimeWindow, sample_round: int
    ) -> TimeFrameResponse | None:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT values_json, rising_json, sample_round FROM frames "
                "WHERE term=? AND geo=? AND start=? AND end=? AND sample_round=?",
                (
                    term,
                    geo,
                    window.start.isoformat(),
                    window.end.isoformat(),
                    sample_round,
                ),
            ).fetchone()
        if row is None:
            return None
        values_json, rising_json, stored_round = row
        request = TimeFrameRequest(term=term, geo=geo, window=window)
        rising = tuple(
            RisingTerm(phrase=phrase, weight=weight)
            for phrase, weight in json.loads(rising_json)
        )
        return TimeFrameResponse(
            request=request,
            values=np.array(json.loads(values_json), dtype=np.int16),
            rising=rising,
            sample_round=stored_round,
        )

    def frame_count(self) -> int:
        with self._connect() as conn:
            (count,) = conn.execute("SELECT COUNT(*) FROM frames").fetchone()
        return int(count)

    def frames_by_fetcher(self) -> dict[str, int]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT fetched_by, COUNT(*) FROM frames GROUP BY fetched_by"
            ).fetchall()
        return {fetcher: int(count) for fetcher, count in rows}

    # -- series -----------------------------------------------------------------

    def store_series(
        self,
        term: str,
        geo: str,
        start: datetime,
        values: np.ndarray,
        meta: dict | None = None,
    ) -> None:
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO series VALUES (?,?,?,?,?)",
                (
                    term,
                    geo,
                    start.isoformat(),
                    json.dumps(values.tolist()),
                    json.dumps(meta or {}),
                ),
            )
            conn.commit()

    def load_series(self, term: str, geo: str) -> tuple[datetime, np.ndarray] | None:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT start, values_json FROM series WHERE term=? AND geo=?",
                (term, geo),
            ).fetchone()
        if row is None:
            return None
        start_iso, values_json = row
        return (
            datetime.fromisoformat(start_iso),
            np.array(json.loads(values_json), dtype=np.float64),
        )

    def series_geos(self, term: str) -> list[str]:
        """Geographies with a stored series for *term*, sorted."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT geo FROM series WHERE term=? ORDER BY geo", (term,)
            ).fetchall()
        return [geo for (geo,) in rows]

    def load_series_meta(self, term: str, geo: str) -> dict | None:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT meta_json FROM series WHERE term=? AND geo=?",
                (term, geo),
            ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    # -- spikes ------------------------------------------------------------------

    @staticmethod
    def _spike_row(spike: Spike) -> tuple:
        return (
            spike.term,
            spike.geo,
            spike.start.isoformat(),
            spike.peak.isoformat(),
            spike.end.isoformat(),
            spike.magnitude,
            spike.magnitude_rank,
            json.dumps(list(spike.annotations)),
        )

    def store_spikes(self, spikes: list[Spike] | tuple[Spike, ...]) -> None:
        rows = [self._spike_row(spike) for spike in spikes]
        with self._connect() as conn:
            conn.executemany(
                "INSERT OR REPLACE INTO spikes VALUES (?,?,?,?,?,?,?,?)", rows
            )
            conn.commit()

    def load_spikes(self, term: str | None = None, geo: str | None = None) -> list[Spike]:
        query = (
            "SELECT term, geo, start, peak, end, magnitude, magnitude_rank, "
            "annotations_json FROM spikes"
        )
        clauses = []
        params: list[str] = []
        if term is not None:
            clauses.append("term=?")
            params.append(term)
        if geo is not None:
            clauses.append("geo=?")
            params.append(geo)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        with self._connect() as conn:
            rows = conn.execute(query, params).fetchall()
        spikes = []
        for row in rows:
            term_, geo_, start, peak, end, magnitude, rank, annotations_json = row
            spikes.append(
                Spike(
                    term=term_,
                    geo=geo_,
                    start=datetime.fromisoformat(start),
                    peak=datetime.fromisoformat(peak),
                    end=datetime.fromisoformat(end),
                    magnitude=magnitude,
                    magnitude_rank=rank,
                    annotations=tuple(json.loads(annotations_json)),
                )
            )
        return spikes

    def spike_count(self) -> int:
        with self._connect() as conn:
            (count,) = conn.execute("SELECT COUNT(*) FROM spikes").fetchone()
        return int(count)

    # -- shard partitions --------------------------------------------------------

    def merge_partition(self, path: str) -> None:
        """Merge a shard partition database (see :mod:`repro.runtime.shard`)
        into this one, in one transaction.

        Rows are copied in primary-key order — partitions shard by
        geography, so the copy is conflict-free and the merged tables
        are byte-for-byte what a serial run would have written,
        whatever order the shards finished in.
        """
        if not os.path.exists(path):
            return  # a shard that resumed everything writes nothing
        try:
            with self._connect() as conn:
                conn.execute("ATTACH DATABASE ? AS shard", (path,))
                try:
                    conn.execute(
                        "INSERT OR REPLACE INTO frames SELECT * FROM shard.frames "
                        "ORDER BY term, geo, start, end, sample_round"
                    )
                    conn.execute(
                        "INSERT OR REPLACE INTO series SELECT * FROM shard.series "
                        "ORDER BY term, geo"
                    )
                    conn.execute(
                        "INSERT OR REPLACE INTO spikes SELECT * FROM shard.spikes "
                        "ORDER BY term, geo, peak"
                    )
                    conn.commit()
                finally:
                    conn.execute("DETACH DATABASE shard")
        except sqlite3.Error as error:
            raise DatabaseError(
                f"failed to merge shard partition {path!r}: {error}"
            ) from error

    # -- checkpoints -------------------------------------------------------------

    def store_checkpoint(
        self,
        term: str,
        geo: str,
        start: datetime,
        values: np.ndarray,
        meta: dict,
        spikes: list[Spike] | tuple[Spike, ...],
    ) -> None:
        """Persist one geography's series + spikes in a single transaction.

        The series row doubles as the completion marker: a resuming
        study treats a geography as done only when its series row (with
        a matching study window in the meta) exists, and this method
        commits spikes and series together, so an interrupt can never
        leave a half-written checkpoint that looks complete.
        """
        try:
            with self._connect() as conn:
                conn.execute(
                    "DELETE FROM spikes WHERE term=? AND geo=?", (term, geo)
                )
                conn.executemany(
                    "INSERT OR REPLACE INTO spikes VALUES (?,?,?,?,?,?,?,?)",
                    [self._spike_row(spike) for spike in spikes],
                )
                conn.execute(
                    "INSERT OR REPLACE INTO series VALUES (?,?,?,?,?)",
                    (
                        term,
                        geo,
                        start.isoformat(),
                        json.dumps(values.tolist()),
                        json.dumps(meta),
                    ),
                )
                conn.commit()
        except sqlite3.Error as error:
            raise DatabaseError(
                f"failed to store checkpoint for {geo}: {error}"
            ) from error
