"""Backend database for the collection module.

The paper's implementation keeps a backend database into which the
responses gathered by the fetcher units are merged.  This is a thin
sqlite3 layer (``:memory:`` by default, a file path for persistence)
storing raw frame responses, reconstructed series, and detected spikes,
so a crawl can be interrupted, resumed, and analyzed offline.
"""

from __future__ import annotations

import json
import sqlite3
from datetime import datetime
from types import TracebackType

import numpy as np

from repro.core.spikes import Spike
from repro.errors import DatabaseError
from repro.timeutil import TimeWindow
from repro.trends.records import RisingTerm, TimeFrameRequest, TimeFrameResponse

_SCHEMA = """
CREATE TABLE IF NOT EXISTS frames (
    term TEXT NOT NULL,
    geo TEXT NOT NULL,
    start TEXT NOT NULL,
    end TEXT NOT NULL,
    sample_round INTEGER NOT NULL,
    values_json TEXT NOT NULL,
    rising_json TEXT NOT NULL,
    fetched_by TEXT NOT NULL,
    PRIMARY KEY (term, geo, start, end, sample_round)
);
CREATE TABLE IF NOT EXISTS series (
    term TEXT NOT NULL,
    geo TEXT NOT NULL,
    start TEXT NOT NULL,
    values_json TEXT NOT NULL,
    PRIMARY KEY (term, geo)
);
CREATE TABLE IF NOT EXISTS spikes (
    term TEXT NOT NULL,
    geo TEXT NOT NULL,
    start TEXT NOT NULL,
    peak TEXT NOT NULL,
    end TEXT NOT NULL,
    magnitude REAL NOT NULL,
    magnitude_rank INTEGER NOT NULL,
    annotations_json TEXT NOT NULL,
    PRIMARY KEY (term, geo, peak)
);
"""


class CollectionDatabase:
    """Stores crawled frames, stitched series, and detected spikes."""

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CollectionDatabase":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # -- frames ------------------------------------------------------------------

    def store_frame(self, response: TimeFrameResponse, fetched_by: str) -> None:
        request = response.request
        rising = [[term.phrase, term.weight] for term in response.rising]
        try:
            self._conn.execute(
                "INSERT OR REPLACE INTO frames VALUES (?,?,?,?,?,?,?,?)",
                (
                    request.term,
                    request.geo,
                    request.window.start.isoformat(),
                    request.window.end.isoformat(),
                    response.sample_round,
                    json.dumps(response.values.tolist()),
                    json.dumps(rising),
                    fetched_by,
                ),
            )
            self._conn.commit()
        except sqlite3.Error as error:
            raise DatabaseError(f"failed to store frame: {error}") from error

    def load_frame(
        self, term: str, geo: str, window: TimeWindow, sample_round: int
    ) -> TimeFrameResponse | None:
        row = self._conn.execute(
            "SELECT values_json, rising_json, sample_round FROM frames "
            "WHERE term=? AND geo=? AND start=? AND end=? AND sample_round=?",
            (
                term,
                geo,
                window.start.isoformat(),
                window.end.isoformat(),
                sample_round,
            ),
        ).fetchone()
        if row is None:
            return None
        values_json, rising_json, stored_round = row
        request = TimeFrameRequest(term=term, geo=geo, window=window)
        rising = tuple(
            RisingTerm(phrase=phrase, weight=weight)
            for phrase, weight in json.loads(rising_json)
        )
        return TimeFrameResponse(
            request=request,
            values=np.array(json.loads(values_json), dtype=np.int16),
            rising=rising,
            sample_round=stored_round,
        )

    def frame_count(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM frames").fetchone()
        return int(count)

    def frames_by_fetcher(self) -> dict[str, int]:
        rows = self._conn.execute(
            "SELECT fetched_by, COUNT(*) FROM frames GROUP BY fetched_by"
        ).fetchall()
        return {fetcher: int(count) for fetcher, count in rows}

    # -- series -----------------------------------------------------------------

    def store_series(
        self, term: str, geo: str, start: datetime, values: np.ndarray
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO series VALUES (?,?,?,?)",
            (term, geo, start.isoformat(), json.dumps(values.tolist())),
        )
        self._conn.commit()

    def load_series(self, term: str, geo: str) -> tuple[datetime, np.ndarray] | None:
        row = self._conn.execute(
            "SELECT start, values_json FROM series WHERE term=? AND geo=?",
            (term, geo),
        ).fetchone()
        if row is None:
            return None
        start_iso, values_json = row
        return (
            datetime.fromisoformat(start_iso),
            np.array(json.loads(values_json), dtype=np.float64),
        )

    # -- spikes ------------------------------------------------------------------

    def store_spikes(self, spikes: list[Spike] | tuple[Spike, ...]) -> None:
        rows = [
            (
                spike.term,
                spike.geo,
                spike.start.isoformat(),
                spike.peak.isoformat(),
                spike.end.isoformat(),
                spike.magnitude,
                spike.magnitude_rank,
                json.dumps(list(spike.annotations)),
            )
            for spike in spikes
        ]
        self._conn.executemany(
            "INSERT OR REPLACE INTO spikes VALUES (?,?,?,?,?,?,?,?)", rows
        )
        self._conn.commit()

    def load_spikes(self, term: str | None = None, geo: str | None = None) -> list[Spike]:
        query = (
            "SELECT term, geo, start, peak, end, magnitude, magnitude_rank, "
            "annotations_json FROM spikes"
        )
        clauses = []
        params: list[str] = []
        if term is not None:
            clauses.append("term=?")
            params.append(term)
        if geo is not None:
            clauses.append("geo=?")
            params.append(geo)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        spikes = []
        for row in self._conn.execute(query, params):
            term_, geo_, start, peak, end, magnitude, rank, annotations_json = row
            spikes.append(
                Spike(
                    term=term_,
                    geo=geo_,
                    start=datetime.fromisoformat(start),
                    peak=datetime.fromisoformat(peak),
                    end=datetime.fromisoformat(end),
                    magnitude=magnitude,
                    magnitude_rank=rank,
                    annotations=tuple(json.loads(annotations_json)),
                )
            )
        return spikes

    def spike_count(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM spikes").fetchone()
        return int(count)
