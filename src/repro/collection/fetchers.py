"""Fetcher units: crawler identities behind separate IP addresses.

GT's IP-based rate limiting is the collection bottleneck (paper §4,
Implementation), so the workload is spread over multiple fetcher units,
each owning its own IP (and therefore its own token bucket at the
service).  A :class:`FetcherUnit` is a thin stateful wrapper around a
:class:`repro.trends.TrendsClient` that tracks its own load, plus a
per-IP :class:`~repro.collection.breaker.CircuitBreaker` so the
scheduler can route work away from an IP that has gone dark.
"""

from __future__ import annotations

import dataclasses
import time

from repro.collection.breaker import BreakerConfig, CircuitBreaker
from repro.errors import ConfigurationError
from repro.timeutil import TimeWindow
from repro.trends.client import RetryPolicy, Sleeper, TrendsClient
from repro.trends.records import TimeFrameResponse
from repro.trends.service import TrendsService


@dataclasses.dataclass(frozen=True, slots=True)
class WorkItem:
    """One frame to crawl."""

    term: str
    geo: str
    window: TimeWindow
    sample_round: int = 0
    include_rising: bool = True

    @property
    def key(self) -> tuple[str, str, str, str, int]:
        return (
            self.term,
            self.geo,
            self.window.start.isoformat(),
            self.window.end.isoformat(),
            self.sample_round,
        )


class FetcherUnit:
    """One crawl identity: an IP plus its client, breaker and statistics."""

    def __init__(
        self,
        name: str,
        service: TrendsService,
        ip: str,
        sleep: Sleeper,
        policy: RetryPolicy | None = None,
        latency: float = 0.0,
        clock=time.monotonic,
        breaker_config: BreakerConfig | None = None,
    ) -> None:
        if not name:
            raise ConfigurationError("fetcher needs a name")
        self.name = name
        self.sleep = sleep
        self.clock = clock
        self.breaker = CircuitBreaker(breaker_config, clock=clock)
        self.client = TrendsClient(
            service,
            ip=ip,
            sleep=sleep,
            policy=policy,
            latency=latency,
            breaker=self.breaker,
        )
        self.completed = 0

    @property
    def ip(self) -> str:
        return self.client.ip

    @property
    def retries(self) -> int:
        return self.client.retries

    def fetch(self, item: WorkItem) -> TimeFrameResponse:
        """Execute one work item (retries ride on the client)."""
        response = self.client.interest_over_time(
            item.term,
            item.geo,
            item.window,
            sample_round=item.sample_round,
            include_rising=item.include_rising,
        )
        self.completed += 1
        return response


def build_fleet(
    service: TrendsService,
    count: int,
    sleep: Sleeper,
    policy: RetryPolicy | None = None,
    subnet: str = "203.0.113",
    latency: float = 0.0,
    clock=time.monotonic,
    breaker_config: BreakerConfig | None = None,
) -> list[FetcherUnit]:
    """Construct *count* fetcher units on distinct (documentation) IPs."""
    if count <= 0:
        raise ConfigurationError(f"fleet size must be positive: {count}")
    if count > 254:
        raise ConfigurationError(f"one /24 gives at most 254 fetchers: {count}")
    return [
        FetcherUnit(
            name=f"fetcher-{index:02d}",
            service=service,
            ip=f"{subnet}.{index + 1}",
            sleep=sleep,
            policy=policy,
            latency=latency,
            clock=clock,
            breaker_config=breaker_config,
        )
        for index in range(count)
    ]
