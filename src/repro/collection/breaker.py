"""Per-fetcher circuit breaking for the crawl.

When an IP goes dark — the fault injector's blackout, or a run of
503-style transport errors from the real service — every request routed
to it burns a full retry budget before failing.  The breaker is the
standard three-state remedy, one instance per
:class:`~repro.collection.fetchers.FetcherUnit`:

* **CLOSED** — healthy; requests flow.  Consecutive transport failures
  are counted, and reaching ``failure_threshold`` trips the breaker.
* **OPEN** — dark; the unit refuses work (the client raises
  :class:`~repro.errors.CircuitOpenError` before touching the wire and
  the scheduler leases a different unit).  After ``cooldown_seconds``
  of (virtual) clock time the next attempt is allowed through as a
  probe.
* **HALF_OPEN** — probing; one request goes through.  Success closes
  the breaker, failure re-opens it for another cooldown.

Fetcher units are exclusively leased — only one thread drives a unit at
a time — so the half-open state needs no probe bookkeeping; whoever
holds the lease *is* the probe.  Only transport faults count toward
tripping: rate limits are back-pressure (the service is healthy and
says when to come back) and truncated/degraded frames are data-quality
faults that say nothing about the path to the service.

All mutation happens under a lock; the clock is injectable so
cooldowns elapse in virtual time during tests and simulated studies.
"""

from __future__ import annotations

import enum
import threading
import time

from repro.errors import ConfigurationError


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class BreakerConfig:
    """Trip threshold and cooldown for one fetcher's breaker."""

    __slots__ = ("failure_threshold", "cooldown_seconds")

    def __init__(
        self, failure_threshold: int = 5, cooldown_seconds: float = 60.0
    ) -> None:
        if failure_threshold <= 0:
            raise ConfigurationError(
                f"failure_threshold must be positive: {failure_threshold}"
            )
        if cooldown_seconds <= 0.0:
            raise ConfigurationError(
                f"cooldown_seconds must be positive: {cooldown_seconds}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds


class CircuitBreaker:
    """Three-state breaker guarding one fetcher IP (thread-safe)."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or BreakerConfig()
        self.clock = clock
        self.state = BreakerState.CLOSED
        self.retry_at = 0.0
        #: Transition counters, surfaced in the FaultReport.
        self.opened = 0
        self.half_opened = 0
        self.closed = 0
        self._consecutive = 0
        self._lock = threading.Lock()

    def available(self) -> bool:
        """Would an attempt be allowed right now?  (Non-mutating.)

        The scheduler uses this to route leases away from dark units
        without spending the half-open probe.
        """
        with self._lock:
            if self.state is BreakerState.OPEN:
                return self.clock() >= self.retry_at
            return True

    def allow(self) -> bool:
        """Gate one attempt; an expired cooldown moves OPEN → HALF_OPEN."""
        with self._lock:
            if self.state is BreakerState.OPEN:
                if self.clock() < self.retry_at:
                    return False
                self.state = BreakerState.HALF_OPEN
                self.half_opened += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive = 0
            if self.state is BreakerState.HALF_OPEN:
                self.state = BreakerState.CLOSED
                self.closed += 1

    def record_failure(self) -> None:
        """Count one transport failure; trip when the threshold is hit.

        A failed half-open probe re-opens immediately — one bad probe
        is all the evidence needed that the IP is still dark.
        """
        with self._lock:
            if self.state is BreakerState.HALF_OPEN:
                self._trip()
                return
            if self.state is BreakerState.OPEN:
                self.retry_at = self.clock() + self.config.cooldown_seconds
                return
            self._consecutive += 1
            if self._consecutive >= self.config.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self.state = BreakerState.OPEN
        self.opened += 1
        self.retry_at = self.clock() + self.config.cooldown_seconds
        self._consecutive = 0
