"""Data extraction and collection module (paper §4, Implementation).

Maps the crawl workload onto fetcher units hosted behind separate IP
addresses (defeating per-IP rate limits politely), and merges their
responses into a unified sqlite-backed database that also stores
reconstructed series and detected spikes.
"""

from repro.collection.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.collection.database import CollectionDatabase
from repro.collection.fetchers import FetcherUnit, WorkItem, build_fleet
from repro.collection.scheduler import (
    CollectionManager,
    CollectionScheduler,
    CrawlReport,
    DeadLetter,
    DeadLetterQueue,
)

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "CollectionDatabase",
    "CollectionManager",
    "CollectionScheduler",
    "CrawlReport",
    "DeadLetter",
    "DeadLetterQueue",
    "FetcherUnit",
    "WorkItem",
    "build_fleet",
]
