"""Workload scheduling across fetcher units, and the crawl frontend.

Two layers:

* :class:`CollectionScheduler` — maps a queued workload onto the
  fetcher fleet, executes it (serially or across a thread pool), and
  merges every response into the
  :class:`repro.collection.CollectionDatabase`, the paper's "unified
  database".
* :class:`CollectionManager` — the pipeline-facing frontend.  It
  satisfies the :class:`repro.core.pipeline.FrameSource` protocol and
  serves frames from the database first, dispatching cache misses to
  the fleet.  Running SIFT through a manager therefore crawls each
  frame exactly once, however many pipeline stages ask for it.

Concurrency model: fetcher units are handed out through an exclusive
**lease** (checkout/checkin over a condition variable) — the least
loaded *idle* unit wins, and a unit is never shared between threads —
and concurrent requests for the same frame are **single-flighted**: the
first caller crawls, everyone else blocks on the in-flight entry and
reuses the response.  Together these guarantee each frame is crawled at
most once no matter how many pipeline workers run.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.collection.database import CollectionDatabase
from repro.collection.fetchers import FetcherUnit, WorkItem, build_fleet
from repro.errors import CollectionError
from repro.timeutil import TimeWindow
from repro.trends.client import RetryPolicy, Sleeper
from repro.trends.records import TimeFrameResponse
from repro.trends.service import TrendsService

#: Frames accumulated per batched database write during bulk crawls.
_WRITE_BATCH = 64


@dataclasses.dataclass(frozen=True, slots=True)
class CrawlReport:
    """Outcome of a bulk crawl (or of a scheduler's lifetime)."""

    requested: int
    fetched: int
    served_from_cache: int
    retries: int
    per_fetcher: dict[str, int]
    elapsed_seconds: float = 0.0

    @property
    def frames_per_second(self) -> float:
        """Crawl throughput over the measured wall-clock interval."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.fetched / self.elapsed_seconds


class _InFlight:
    """One frame currently being crawled; waiters block on the event."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: TimeFrameResponse | None = None
        self.error: BaseException | None = None


class CollectionScheduler:
    """Leases fetchers to work items and merges results (thread-safe)."""

    def __init__(self, fleet: list[FetcherUnit], database: CollectionDatabase) -> None:
        if not fleet:
            raise CollectionError("scheduler needs at least one fetcher")
        self.fleet = fleet
        self.database = database
        self._fetcher_ready = threading.Condition()
        self._idle: list[FetcherUnit] = list(fleet)
        self._flight_lock = threading.Lock()
        self._inflight: dict[tuple, _InFlight] = {}
        self._counter_lock = threading.Lock()
        self._fetched_total = 0
        self._cache_hits = 0
        self._started = time.perf_counter()

    # -- fetcher leasing ---------------------------------------------------------

    @contextmanager
    def lease(self) -> Iterator[FetcherUnit]:
        """Exclusive checkout of the least-loaded idle fetcher.

        Blocks while the whole fleet is busy; the unit is returned to
        the idle pool (and a waiter woken) on exit, even on error.
        """
        with self._fetcher_ready:
            while not self._idle:
                self._fetcher_ready.wait()
            unit = min(self._idle, key=lambda candidate: candidate.completed)
            self._idle.remove(unit)
        try:
            yield unit
        finally:
            with self._fetcher_ready:
                self._idle.append(unit)
                self._fetcher_ready.notify()

    def _count(self, fetched: int = 0, cached: int = 0) -> None:
        with self._counter_lock:
            self._fetched_total += fetched
            self._cache_hits += cached

    # -- serving -----------------------------------------------------------------

    def fetch_one(self, item: WorkItem) -> TimeFrameResponse:
        """Serve one item through the cache, crawling on a miss.

        Concurrent calls for the same frame are coalesced: only the
        first actually reaches a fetcher.
        """
        existing = self.database.load_frame(
            item.term, item.geo, item.window, item.sample_round
        )
        if existing is not None:
            self._count(cached=1)
            return existing
        key = item.key
        with self._flight_lock:
            flight = self._inflight.get(key)
            owner = flight is None
            if owner:
                flight = _InFlight()
                self._inflight[key] = flight
        if not owner:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            self._count(cached=1)
            assert flight.response is not None
            return flight.response
        try:
            with self.lease() as unit:
                response = unit.fetch(item)
                fetched_by = unit.name
            self.database.store_frame(response, fetched_by=fetched_by)
            flight.response = response
            self._count(fetched=1)
            return response
        except BaseException as error:
            flight.error = error
            raise
        finally:
            flight.event.set()
            with self._flight_lock:
                self._inflight.pop(key, None)

    def execute(
        self, workload: list[WorkItem], max_workers: int | None = None
    ) -> CrawlReport:
        """Crawl every item not already in the database.

        ``max_workers > 1`` dispatches over a thread pool (capped at the
        fleet size — more workers than fetchers would only queue on the
        lease).  Duplicate items and database hits count as served from
        cache; each distinct frame is crawled at most once.
        """
        started = time.perf_counter()
        retries_before = sum(unit.retries for unit in self.fleet)
        seen: set[tuple] = set()
        unique: list[WorkItem] = []
        for item in workload:
            if item.key not in seen:
                seen.add(item.key)
                unique.append(item)
        to_crawl = [
            item
            for item in unique
            if self.database.load_frame(
                item.term, item.geo, item.window, item.sample_round
            )
            is None
        ]
        cached = len(workload) - len(to_crawl)

        pending: list[tuple[TimeFrameResponse, str]] = []
        pending_lock = threading.Lock()

        def crawl(item: WorkItem) -> None:
            with self.lease() as unit:
                response = unit.fetch(item)
                fetched_by = unit.name
            with pending_lock:
                pending.append((response, fetched_by))
                batch = pending.copy() if len(pending) >= _WRITE_BATCH else None
                if batch is not None:
                    pending.clear()
            if batch is not None:
                self.database.store_frames(batch)

        workers = min(max_workers or 1, len(self.fleet), max(len(to_crawl), 1))
        try:
            if workers > 1:
                with concurrent.futures.ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="sift-crawl"
                ) as pool:
                    list(pool.map(crawl, to_crawl))
            else:
                for item in to_crawl:
                    crawl(item)
        finally:
            with pending_lock:
                batch = pending.copy()
                pending.clear()
            self.database.store_frames(batch)
        self._count(fetched=len(to_crawl), cached=cached)
        return CrawlReport(
            requested=len(workload),
            fetched=len(to_crawl),
            served_from_cache=cached,
            retries=sum(unit.retries for unit in self.fleet) - retries_before,
            per_fetcher={unit.name: unit.completed for unit in self.fleet},
            elapsed_seconds=time.perf_counter() - started,
        )

    def lifetime_report(self) -> CrawlReport:
        """Cumulative accounting since the scheduler was built."""
        with self._counter_lock:
            fetched = self._fetched_total
            cached = self._cache_hits
        return CrawlReport(
            requested=fetched + cached,
            fetched=fetched,
            served_from_cache=cached,
            retries=sum(unit.retries for unit in self.fleet),
            per_fetcher={unit.name: unit.completed for unit in self.fleet},
            elapsed_seconds=time.perf_counter() - self._started,
        )


class CollectionManager:
    """Pipeline-facing crawl frontend (a ``FrameSource``)."""

    def __init__(
        self,
        service: TrendsService,
        sleep: Sleeper,
        fetcher_count: int = 4,
        database: CollectionDatabase | None = None,
        policy: RetryPolicy | None = None,
        latency: float = 0.0,
    ) -> None:
        self.database = database or CollectionDatabase()
        fleet = build_fleet(
            service, fetcher_count, sleep=sleep, policy=policy, latency=latency
        )
        self.scheduler = CollectionScheduler(fleet, self.database)

    def interest_over_time(
        self,
        term: str,
        geo: str,
        window: TimeWindow,
        sample_round: int | None = None,
        include_rising: bool = True,
    ) -> TimeFrameResponse:
        item = WorkItem(
            term=term,
            geo=geo,
            window=window,
            sample_round=sample_round if sample_round is not None else 0,
            include_rising=include_rising,
        )
        return self.scheduler.fetch_one(item)

    def prefetch(
        self, workload: list[WorkItem], max_workers: int | None = None
    ) -> CrawlReport:
        """Bulk-crawl a workload ahead of pipeline runs."""
        return self.scheduler.execute(workload, max_workers=max_workers)

    def report(self) -> CrawlReport:
        """Lifetime crawl accounting across every request served."""
        return self.scheduler.lifetime_report()

    @property
    def frames_stored(self) -> int:
        return self.database.frame_count()
