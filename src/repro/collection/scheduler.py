"""Workload scheduling across fetcher units, and the crawl frontend.

Two layers:

* :class:`CollectionScheduler` — maps a queued workload onto the
  fetcher fleet (least-loaded first), executes it, and merges every
  response into the :class:`repro.collection.CollectionDatabase`, the
  paper's "unified database".
* :class:`CollectionManager` — the pipeline-facing frontend.  It
  satisfies the :class:`repro.core.pipeline.FrameSource` protocol and
  serves frames from the database first, dispatching cache misses to
  the fleet.  Running SIFT through a manager therefore crawls each
  frame exactly once, however many pipeline stages ask for it.
"""

from __future__ import annotations

import dataclasses

from repro.collection.database import CollectionDatabase
from repro.collection.fetchers import FetcherUnit, WorkItem, build_fleet
from repro.errors import CollectionError
from repro.timeutil import TimeWindow
from repro.trends.client import RetryPolicy, Sleeper
from repro.trends.records import TimeFrameResponse
from repro.trends.service import TrendsService


@dataclasses.dataclass(frozen=True, slots=True)
class CrawlReport:
    """Outcome of a bulk crawl."""

    requested: int
    fetched: int
    served_from_cache: int
    retries: int
    per_fetcher: dict[str, int]


class CollectionScheduler:
    """Assigns work items to the least-loaded fetcher and merges results."""

    def __init__(self, fleet: list[FetcherUnit], database: CollectionDatabase) -> None:
        if not fleet:
            raise CollectionError("scheduler needs at least one fetcher")
        self.fleet = fleet
        self.database = database

    def _next_fetcher(self) -> FetcherUnit:
        return min(self.fleet, key=lambda unit: unit.completed)

    def execute(self, workload: list[WorkItem]) -> CrawlReport:
        """Crawl every item not already in the database."""
        fetched = 0
        cached = 0
        retries_before = sum(unit.retries for unit in self.fleet)
        for item in workload:
            existing = self.database.load_frame(
                item.term, item.geo, item.window, item.sample_round
            )
            if existing is not None:
                cached += 1
                continue
            unit = self._next_fetcher()
            response = unit.fetch(item)
            self.database.store_frame(response, fetched_by=unit.name)
            fetched += 1
        return CrawlReport(
            requested=len(workload),
            fetched=fetched,
            served_from_cache=cached,
            retries=sum(unit.retries for unit in self.fleet) - retries_before,
            per_fetcher={unit.name: unit.completed for unit in self.fleet},
        )

    def fetch_one(self, item: WorkItem) -> TimeFrameResponse:
        """Serve one item through the cache, crawling on a miss."""
        existing = self.database.load_frame(
            item.term, item.geo, item.window, item.sample_round
        )
        if existing is not None:
            return existing
        unit = self._next_fetcher()
        response = unit.fetch(item)
        self.database.store_frame(response, fetched_by=unit.name)
        return response


class CollectionManager:
    """Pipeline-facing crawl frontend (a ``FrameSource``)."""

    def __init__(
        self,
        service: TrendsService,
        sleep: Sleeper,
        fetcher_count: int = 4,
        database: CollectionDatabase | None = None,
        policy: RetryPolicy | None = None,
    ) -> None:
        self.database = database or CollectionDatabase()
        fleet = build_fleet(service, fetcher_count, sleep=sleep, policy=policy)
        self.scheduler = CollectionScheduler(fleet, self.database)

    def interest_over_time(
        self,
        term: str,
        geo: str,
        window: TimeWindow,
        sample_round: int | None = None,
        include_rising: bool = True,
    ) -> TimeFrameResponse:
        item = WorkItem(
            term=term,
            geo=geo,
            window=window,
            sample_round=sample_round if sample_round is not None else 0,
            include_rising=include_rising,
        )
        return self.scheduler.fetch_one(item)

    def prefetch(self, workload: list[WorkItem]) -> CrawlReport:
        """Bulk-crawl a workload ahead of pipeline runs."""
        return self.scheduler.execute(workload)

    @property
    def frames_stored(self) -> int:
        return self.database.frame_count()
