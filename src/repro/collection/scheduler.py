"""Workload scheduling across fetcher units, and the crawl frontend.

Two layers:

* :class:`CollectionScheduler` — maps a queued workload onto the
  fetcher fleet, executes it (serially or across a thread pool), and
  merges every response into the
  :class:`repro.collection.CollectionDatabase`, the paper's "unified
  database".
* :class:`CollectionManager` — the pipeline-facing frontend.  It
  satisfies the :class:`repro.core.pipeline.FrameSource` protocol and
  serves frames from the database first, dispatching cache misses to
  the fleet.  Running SIFT through a manager therefore crawls each
  frame exactly once, however many pipeline stages ask for it.

Concurrency model: fetcher units are handed out through an exclusive
**lease** (checkout/checkin over a condition variable) — the least
loaded *idle* unit whose circuit breaker admits work wins, and a unit
is never shared between threads — and concurrent requests for the same
frame are **single-flighted**: the first caller crawls, everyone else
blocks on the in-flight entry and reuses the response.  Together these
guarantee each frame is crawled at most once no matter how many
pipeline workers run.

Failure model (see DESIGN.md §7): a fetcher that exhausts its retry
budget on a frame raises :class:`~repro.errors.FrameCrawlError` and
the scheduler **reassigns** the frame to another unit; a unit whose
breaker is open is skipped at lease time (and raises
:class:`~repro.errors.CircuitOpenError` if raced).  A frame that
exhausts the reassignment budget too is parked on the **dead-letter
queue** — exactly once, owner-side of the single flight — and
surfaces as :class:`~repro.errors.FrameDeadLettered`, which the
pipeline converts into a missing-frame record instead of crashing the
study.  Fatal errors (malformed requests) are recorded on the DLQ and
re-raised as themselves.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import threading
import time
from collections import Counter
from contextlib import contextmanager
from typing import Iterator

from repro.collection.breaker import BreakerConfig
from repro.collection.database import CollectionDatabase
from repro.collection.fetchers import FetcherUnit, WorkItem, build_fleet
from repro.errors import (
    CircuitOpenError,
    CollectionError,
    FrameCrawlError,
    FrameDeadLettered,
    ReproError,
)
from repro.timeutil import TimeWindow
from repro.trends.client import RetryPolicy, Sleeper
from repro.trends.faults import FaultReport
from repro.trends.records import TimeFrameResponse
from repro.trends.service import TrendsService

#: Frames accumulated per batched database write during bulk crawls.
_WRITE_BATCH = 64

#: Distinct fetcher units allowed to exhaust their retry budget on one
#: frame before it is dead-lettered.
_MAX_UNIT_ATTEMPTS = 3


@dataclasses.dataclass(frozen=True, slots=True)
class CrawlReport:
    """Outcome of a bulk crawl (or of a scheduler's lifetime)."""

    requested: int
    fetched: int
    served_from_cache: int
    retries: int
    per_fetcher: dict[str, int]
    elapsed_seconds: float = 0.0
    dead_lettered: int = 0

    @property
    def frames_per_second(self) -> float:
        """Crawl throughput over the measured wall-clock interval."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.fetched / self.elapsed_seconds


@dataclasses.dataclass(frozen=True, slots=True)
class DeadLetter:
    """One frame the crawl gave up on, with the error that killed it."""

    item: WorkItem
    error: str
    error_type: str


class DeadLetterQueue:
    """Thread-safe parking lot for frames the crawl could not complete."""

    def __init__(self) -> None:
        self._entries: list[DeadLetter] = []
        self._lock = threading.Lock()

    def record(self, item: WorkItem, error: BaseException) -> DeadLetter:
        letter = DeadLetter(
            item=item, error=str(error), error_type=type(error).__name__
        )
        with self._lock:
            self._entries.append(letter)
        return letter

    def entries(self) -> list[DeadLetter]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _InFlight:
    """One frame currently being crawled; waiters block on the event."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: TimeFrameResponse | None = None
        self.error: BaseException | None = None


class CollectionScheduler:
    """Leases fetchers to work items and merges results (thread-safe)."""

    def __init__(
        self,
        fleet: list[FetcherUnit],
        database: CollectionDatabase,
        sleep: Sleeper | None = None,
    ) -> None:
        if not fleet:
            raise CollectionError("scheduler needs at least one fetcher")
        self.fleet = fleet
        self.database = database
        #: Spends the wait when every idle unit's breaker is open;
        #: defaults to whatever sleeper the fleet itself runs on so
        #: virtual-time studies stay sleep-free.
        self._sleep = sleep if sleep is not None else fleet[0].sleep
        self.dead_letters = DeadLetterQueue()
        self._fetcher_ready = threading.Condition()
        self._idle: list[FetcherUnit] = list(fleet)
        self._flight_lock = threading.Lock()
        self._inflight: dict[tuple, _InFlight] = {}
        self._counter_lock = threading.Lock()
        self._fetched_total = 0
        self._cache_hits = 0
        self._started = time.perf_counter()

    # -- fetcher leasing ---------------------------------------------------------

    @contextmanager
    def lease(self) -> Iterator[FetcherUnit]:
        """Exclusive checkout of the least-loaded admissible idle fetcher.

        Blocks while the whole fleet is busy; skips units whose circuit
        breaker is open, sleeping (virtual time) until the earliest
        half-open probe when every idle unit is dark.  The unit is
        returned to the idle pool (and a waiter woken) on exit, even on
        error.
        """
        while True:
            delay = 0.0
            with self._fetcher_ready:
                while not self._idle:
                    self._fetcher_ready.wait()
                ready = [
                    unit for unit in self._idle if unit.breaker.available()
                ]
                if ready:
                    unit = min(ready, key=lambda candidate: candidate.completed)
                    self._idle.remove(unit)
                    break
                if len(self._idle) < len(self.fleet):
                    # Some units are busy; one may come back healthy.
                    self._fetcher_ready.wait()
                    continue
                # The whole fleet is idle and dark: wait out the
                # shortest cooldown, off the lock so returns can
                # proceed, then re-check.
                now = self.fleet[0].breaker.clock()
                delay = max(
                    min(unit.breaker.retry_at for unit in self._idle) - now,
                    0.0,
                )
            self._sleep(max(delay, 1e-3))
        try:
            yield unit
        finally:
            with self._fetcher_ready:
                self._idle.append(unit)
                self._fetcher_ready.notify()

    def _count(self, fetched: int = 0, cached: int = 0) -> None:
        with self._counter_lock:
            self._fetched_total += fetched
            self._cache_hits += cached

    # -- crawling ----------------------------------------------------------------

    def _crawl_item(self, item: WorkItem) -> tuple[TimeFrameResponse, str]:
        """Crawl one frame, reassigning across units on failure.

        A unit that gives up (:class:`FrameCrawlError`) or whose breaker
        opens mid-lease (:class:`CircuitOpenError`) costs one slot of
        the respective budget and the frame moves to another unit.
        Exhausting the budgets dead-letters the frame; fatal errors are
        dead-lettered and re-raised as themselves.
        """
        unit_attempts = 0
        breaker_bounces = 0
        max_bounces = 2 * len(self.fleet) + 2
        while True:
            with self.lease() as unit:
                try:
                    response = unit.fetch(item)
                    return response, unit.name
                except CircuitOpenError as error:
                    breaker_bounces += 1
                    if breaker_bounces >= max_bounces:
                        self.dead_letters.record(item, error)
                        raise FrameDeadLettered(
                            f"frame {item.key} dead-lettered after "
                            f"{breaker_bounces} open-breaker bounces: {error}"
                        ) from error
                except FrameCrawlError as error:
                    unit_attempts += 1
                    if unit_attempts >= _MAX_UNIT_ATTEMPTS:
                        self.dead_letters.record(item, error)
                        raise FrameDeadLettered(
                            f"frame {item.key} dead-lettered after "
                            f"{unit_attempts} fetchers gave up: {error}"
                        ) from error
                except ReproError as error:
                    # Fatal: no retry can help.  Record for the
                    # post-mortem and propagate the original.
                    self.dead_letters.record(item, error)
                    raise

    # -- serving -----------------------------------------------------------------

    def fetch_one(self, item: WorkItem) -> TimeFrameResponse:
        """Serve one item through the cache, crawling on a miss.

        Concurrent calls for the same frame are coalesced: only the
        first actually reaches a fetcher.
        """
        existing = self.database.load_frame(
            item.term, item.geo, item.window, item.sample_round
        )
        if existing is not None:
            self._count(cached=1)
            return existing
        key = item.key
        with self._flight_lock:
            flight = self._inflight.get(key)
            owner = flight is None
            if owner:
                flight = _InFlight()
                self._inflight[key] = flight
        if not owner:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            self._count(cached=1)
            assert flight.response is not None
            return flight.response
        try:
            response, fetched_by = self._crawl_item(item)
            self.database.store_frame(response, fetched_by=fetched_by)
            flight.response = response
            self._count(fetched=1)
            return response
        except BaseException as error:
            flight.error = error
            raise
        finally:
            flight.event.set()
            with self._flight_lock:
                self._inflight.pop(key, None)

    def execute(
        self, workload: list[WorkItem], max_workers: int | None = None
    ) -> CrawlReport:
        """Crawl every item not already in the database.

        ``max_workers > 1`` dispatches over a thread pool (capped at the
        fleet size — more workers than fetchers would only queue on the
        lease).  Duplicate items and database hits count as served from
        cache; each distinct frame is crawled at most once.  Frames the
        fleet cannot complete are dead-lettered and skipped (counted in
        the report), not raised.
        """
        started = time.perf_counter()
        retries_before = sum(unit.retries for unit in self.fleet)
        dead_before = len(self.dead_letters)
        seen: set[tuple] = set()
        unique: list[WorkItem] = []
        for item in workload:
            if item.key not in seen:
                seen.add(item.key)
                unique.append(item)
        to_crawl = [
            item
            for item in unique
            if self.database.load_frame(
                item.term, item.geo, item.window, item.sample_round
            )
            is None
        ]
        cached = len(workload) - len(to_crawl)

        pending: list[tuple[TimeFrameResponse, str]] = []
        pending_lock = threading.Lock()
        crawled = [0]

        def crawl(item: WorkItem) -> None:
            try:
                response, fetched_by = self._crawl_item(item)
            except FrameDeadLettered:
                return
            with pending_lock:
                crawled[0] += 1
                pending.append((response, fetched_by))
                batch = pending.copy() if len(pending) >= _WRITE_BATCH else None
                if batch is not None:
                    pending.clear()
            if batch is not None:
                self.database.store_frames(batch)

        workers = min(max_workers or 1, len(self.fleet), max(len(to_crawl), 1))
        try:
            if workers > 1:
                with concurrent.futures.ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="sift-crawl"
                ) as pool:
                    list(pool.map(crawl, to_crawl))
            else:
                for item in to_crawl:
                    crawl(item)
        finally:
            with pending_lock:
                batch = pending.copy()
                pending.clear()
            self.database.store_frames(batch)
        self._count(fetched=crawled[0], cached=cached)
        return CrawlReport(
            requested=len(workload),
            fetched=crawled[0],
            served_from_cache=cached,
            retries=sum(unit.retries for unit in self.fleet) - retries_before,
            per_fetcher={unit.name: unit.completed for unit in self.fleet},
            elapsed_seconds=time.perf_counter() - started,
            dead_lettered=len(self.dead_letters) - dead_before,
        )

    def lifetime_report(self) -> CrawlReport:
        """Cumulative accounting since the scheduler was built."""
        with self._counter_lock:
            fetched = self._fetched_total
            cached = self._cache_hits
        return CrawlReport(
            requested=fetched + cached,
            fetched=fetched,
            served_from_cache=cached,
            retries=sum(unit.retries for unit in self.fleet),
            per_fetcher={unit.name: unit.completed for unit in self.fleet},
            elapsed_seconds=time.perf_counter() - self._started,
            dead_lettered=len(self.dead_letters),
        )

    def fault_report(self) -> FaultReport | None:
        """Chaos accounting, or ``None`` when no fault injector is wired.

        ``injected`` comes from the service wrapper's counters,
        ``observed`` from the fleet clients' per-exception retry
        causes — in a clean run every injected fault is observed (and
        retried) exactly once downstream.
        """
        service = self.fleet[0].client.service
        if not hasattr(service, "injection_counts"):
            return None
        observed: Counter = Counter()
        for unit in self.fleet:
            observed.update(unit.client.retry_causes)
        return FaultReport(
            profile=service.plan.profile.name,
            seed=service.plan.seed,
            injected=service.injection_counts(),
            observed=dict(sorted(observed.items())),
            retries=sum(unit.retries for unit in self.fleet),
            breaker_opened=sum(unit.breaker.opened for unit in self.fleet),
            breaker_half_opened=sum(
                unit.breaker.half_opened for unit in self.fleet
            ),
            breaker_closed=sum(unit.breaker.closed for unit in self.fleet),
            dead_letters=len(self.dead_letters),
            blackout_rejections=dict(
                sorted(service.blackout_rejections.items())
            ),
        )


class CollectionManager:
    """Pipeline-facing crawl frontend (a ``FrameSource``)."""

    def __init__(
        self,
        service: TrendsService,
        sleep: Sleeper,
        fetcher_count: int = 4,
        database: CollectionDatabase | None = None,
        policy: RetryPolicy | None = None,
        latency: float = 0.0,
        clock=time.monotonic,
        breaker_config: BreakerConfig | None = None,
    ) -> None:
        self.database = database or CollectionDatabase()
        fleet = build_fleet(
            service,
            fetcher_count,
            sleep=sleep,
            policy=policy,
            latency=latency,
            clock=clock,
            breaker_config=breaker_config,
        )
        self.scheduler = CollectionScheduler(fleet, self.database, sleep=sleep)

    def interest_over_time(
        self,
        term: str,
        geo: str,
        window: TimeWindow,
        sample_round: int | None = None,
        include_rising: bool = True,
    ) -> TimeFrameResponse:
        item = WorkItem(
            term=term,
            geo=geo,
            window=window,
            sample_round=sample_round if sample_round is not None else 0,
            include_rising=include_rising,
        )
        return self.scheduler.fetch_one(item)

    def prefetch(
        self, workload: list[WorkItem], max_workers: int | None = None
    ) -> CrawlReport:
        """Bulk-crawl a workload ahead of pipeline runs."""
        return self.scheduler.execute(workload, max_workers=max_workers)

    def report(self) -> CrawlReport:
        """Lifetime crawl accounting across every request served."""
        return self.scheduler.lifetime_report()

    def fault_report(self) -> FaultReport | None:
        """Chaos accounting (``None`` without a fault injector)."""
        return self.scheduler.fault_report()

    @property
    def frames_stored(self) -> int:
        return self.database.frame_count()
