"""One-stop wiring of the full simulated SIFT deployment.

Everything the paper's system needs, assembled with consistent seeds
and a virtual clock:

    world scenario -> search population -> Trends service
        -> fetcher fleet + database -> SIFT pipeline

:func:`make_environment` is the entry point used by the examples, the
test suite, and every benchmark.  ``background_scale`` trades run time
for study size (1.0 = paper scale, the default 0.15 runs the complete
two-year, 51-state study in well under a minute while preserving every
distributional shape).
"""

from __future__ import annotations

import dataclasses
from datetime import datetime

from repro.collection.scheduler import CollectionManager
from repro.core.pipeline import Sift, SiftConfig, StudyResult
from repro.timeutil import TimeWindow, utc
from repro.trends.ratelimit import RateLimitConfig, SimulatedClock
from repro.trends.service import TrendsConfig, TrendsService
from repro.world.population import SearchPopulation
from repro.world.scenarios import Scenario, ScenarioConfig
from repro.world.states import STATES

#: The paper's study window: 1 Jan 2020 - 31 Dec 2021.
STUDY_START: datetime = utc(2020, 1, 1)
STUDY_END: datetime = utc(2022, 1, 1)

#: All 51 Trends geographies of the study (50 states + DC).
ALL_GEOS: tuple[str, ...] = tuple(state.geo for state in STATES)


@dataclasses.dataclass(frozen=True, slots=True)
class EnvironmentConfig:
    """Parameters of a simulated deployment."""

    background_scale: float = 0.15
    seed: int = 20221025
    fetcher_count: int = 4
    #: Generous limits keep simulated crawls fast; tighten them to study
    #: the scheduler under pressure (see the collection tests).
    requests_per_second: float = 50.0
    burst: int = 500
    sift: SiftConfig = dataclasses.field(default_factory=SiftConfig)
    start: datetime = STUDY_START
    end: datetime = STUDY_END


class Environment:
    """A fully-wired simulated SIFT deployment."""

    def __init__(self, config: EnvironmentConfig) -> None:
        self.config = config
        self.scenario = Scenario.build(
            ScenarioConfig(
                start=config.start,
                end=config.end,
                seed=config.seed,
                background_scale=config.background_scale,
            )
        )
        self.population = SearchPopulation(self.scenario, noise_seed=config.seed + 1)
        self.clock = SimulatedClock()
        self.service = TrendsService(
            self.population,
            TrendsConfig(
                rate_limit=RateLimitConfig(
                    burst=config.burst,
                    refill_per_second=config.requests_per_second,
                )
            ),
            clock=self.clock,
        )
        self.manager = CollectionManager(
            self.service,
            sleep=self.clock.sleep,
            fetcher_count=config.fetcher_count,
        )
        self.sift = Sift(self.manager, config.sift)

    @property
    def window(self) -> TimeWindow:
        return TimeWindow(self.config.start, self.config.end)

    def run_study(
        self,
        geos: tuple[str, ...] | list[str] | None = None,
        window: TimeWindow | None = None,
    ) -> StudyResult:
        """Run the full SIFT study (defaults: all geos, full window)."""
        return self.sift.run_study(
            tuple(geos) if geos is not None else ALL_GEOS,
            window or self.window,
        )


def make_environment(
    background_scale: float = 0.15,
    seed: int = 20221025,
    fetcher_count: int = 4,
    sift: SiftConfig | None = None,
    start: datetime = STUDY_START,
    end: datetime = STUDY_END,
) -> Environment:
    """Build a simulated deployment with sensible defaults."""
    return Environment(
        EnvironmentConfig(
            background_scale=background_scale,
            seed=seed,
            fetcher_count=fetcher_count,
            sift=sift or SiftConfig(),
            start=start,
            end=end,
        )
    )
