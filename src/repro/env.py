"""Backwards-compatible façade over :mod:`repro.runtime`.

The one-stop wiring of the simulated deployment now lives in
:class:`repro.runtime.StudyRuntime`; this module keeps the historical
names — :class:`Environment`, :class:`EnvironmentConfig`,
:func:`make_environment` — working on top of it.  New code should use
``StudyRuntime.build(...)`` directly, which also exposes the execution
knobs (``max_workers``, ``database``, ``checkpoint``, ``progress``).

``background_scale`` trades run time for study size (1.0 = paper
scale, the default 0.15 runs the complete two-year, 51-state study in
well under a minute while preserving every distributional shape).
"""

from __future__ import annotations

from datetime import datetime

from repro.core.pipeline import SiftConfig
from repro.core.progress import ProgressListener
from repro.runtime.study import (
    ALL_GEOS,
    STUDY_END,
    STUDY_START,
    RuntimeConfig,
    StudyRuntime,
)

#: Historical aliases; the runtime config is a strict superset.
EnvironmentConfig = RuntimeConfig
Environment = StudyRuntime


def make_environment(
    background_scale: float = 0.15,
    seed: int = 20221025,
    fetcher_count: int = 4,
    sift: SiftConfig | None = None,
    start: datetime = STUDY_START,
    end: datetime = STUDY_END,
    max_workers: int = 1,
    database: str = ":memory:",
    checkpoint: bool = True,
    progress: ProgressListener | None = None,
) -> StudyRuntime:
    """Build a simulated deployment with sensible defaults."""
    return StudyRuntime.build(
        background_scale=background_scale,
        seed=seed,
        fetcher_count=fetcher_count,
        sift=sift,
        start=start,
        end=end,
        max_workers=max_workers,
        database=database,
        checkpoint=checkpoint,
        progress=progress,
    )


__all__ = [
    "ALL_GEOS",
    "Environment",
    "EnvironmentConfig",
    "STUDY_END",
    "STUDY_START",
    "make_environment",
]
