"""Exception hierarchy for the SIFT reproduction.

All errors raised by this package derive from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause while
still distinguishing the fine-grained conditions below.

The collection layer additionally needs to know, for *any* error the
Trends service can surface, whether retrying can help.
:func:`classify_error` is that decision, total over the hierarchy:
every :class:`ReproError` maps to exactly one :class:`ErrorClass`, and
anything the table does not explicitly mark retryable is fatal.
"""

from __future__ import annotations

import enum


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters."""


class CheckpointMismatchError(ConfigurationError):
    """A stored checkpoint was produced by a different reconstruction
    backend than the resuming study is configured with.

    Unlike a window mismatch — which is silently ignored, because the
    geography can simply re-analyze — mixing backends would blend
    timelines computed under different calibration semantics into one
    study, so the resume refuses instead.
    """


class TimeGridError(ReproError):
    """A timestamp or range does not align with the hourly grid."""


class UnknownGeoError(ReproError):
    """A geography code does not name a supported US state."""

    def __init__(self, geo: str) -> None:
        super().__init__(f"unknown geography: {geo!r}")
        self.geo = geo


class UnknownTermError(ReproError):
    """A search term is not present in the simulated search world."""

    def __init__(self, term: str) -> None:
        super().__init__(f"unknown search term: {term!r}")
        self.term = term


class TrendsRequestError(ReproError):
    """The Trends service rejected a malformed request."""


class RateLimitError(TrendsRequestError):
    """The per-IP request budget is exhausted.

    Attributes:
        retry_after: seconds the caller should wait before retrying.
    """

    def __init__(self, ip: str, retry_after: float) -> None:
        super().__init__(
            f"rate limit exceeded for {ip}; retry after {retry_after:.2f}s"
        )
        self.ip = ip
        self.retry_after = retry_after


class TransientServiceError(TrendsRequestError):
    """A 503-style hiccup: the request failed but a retry may succeed."""


class RequestTimeout(TransientServiceError):
    """The service did not answer within the request deadline.

    Attributes:
        timeout_seconds: how long the caller waited (virtual time).
    """

    def __init__(self, ip: str, timeout_seconds: float) -> None:
        super().__init__(
            f"request from {ip} timed out after {timeout_seconds:.1f}s"
        )
        self.ip = ip
        self.timeout_seconds = timeout_seconds


class TruncatedFrameError(TransientServiceError):
    """The response covered fewer hours than the requested frame."""

    def __init__(self, expected_hours: int, got_hours: int) -> None:
        super().__init__(
            f"truncated frame: expected {expected_hours} hours, "
            f"got {got_hours}"
        )
        self.expected_hours = expected_hours
        self.got_hours = got_hours


class DegradedFrameError(TransientServiceError):
    """The response was computed from a sample below the privacy
    threshold (the service flagged it as all-zero low-sample data)."""


class StitchingError(ReproError):
    """Consecutive time frames could not be stitched together."""


class ConvergenceError(ReproError):
    """Iterative averaging failed to converge within the round budget."""


class DetectionError(ReproError):
    """The spike detector received an invalid series."""


class DatabaseError(ReproError):
    """The collection database rejected an operation."""


class StoreIntegrityError(DatabaseError):
    """A persisted partition failed its integrity check (truncated,
    bit-flipped, or missing) and could not be quarantined."""


class CollectionError(ReproError):
    """The collection scheduler could not complete a workload."""


class TickCrashError(CollectionError):
    """A streaming tick died mid-crawl (simulated process crash).

    Raised above the per-frame retry machinery — the supervisor, not
    the fetcher loop, owns recovery: the tick is retry-safe (fed
    geographies are skipped by their watermark), so a restart simply
    runs it again.
    """


class WatchdogTimeout(CollectionError):
    """A supervised tick overran its virtual-time watchdog deadline.

    Attributes:
        elapsed_seconds: virtual time the tick had consumed when the
            watchdog fired.
        deadline_seconds: the armed deadline.
    """

    def __init__(self, elapsed_seconds: float, deadline_seconds: float) -> None:
        super().__init__(
            f"watchdog fired: tick spent {elapsed_seconds:.1f}s of virtual "
            f"time against a {deadline_seconds:.1f}s deadline"
        )
        self.elapsed_seconds = elapsed_seconds
        self.deadline_seconds = deadline_seconds


class SupervisorHalted(CollectionError):
    """The daemon supervisor exhausted its restart budget (or hit a
    fatal error) and refuses to restart again.

    Attributes:
        restarts: restarts spent before halting.
        last_error: the failure that exhausted the budget.
    """

    def __init__(self, reason: str, restarts: int = 0,
                 last_error: BaseException | None = None) -> None:
        super().__init__(reason)
        self.restarts = restarts
        self.last_error = last_error


class CircuitOpenError(CollectionError):
    """A fetcher's circuit breaker is open; route work elsewhere.

    Attributes:
        ip: the fetcher IP whose breaker rejected the request.
        retry_at: virtual-clock time of the next half-open probe.
    """

    def __init__(self, ip: str, retry_at: float) -> None:
        super().__init__(
            f"circuit open for {ip}; next probe at t={retry_at:.2f}"
        )
        self.ip = ip
        self.retry_at = retry_at


class FrameCrawlError(CollectionError):
    """One fetcher exhausted its retry budget on a single frame.

    Attributes:
        ip: the fetcher that gave up.
        attempts: how many attempts were spent.
        last_error: the final failure (``None`` if unknown).
    """

    def __init__(
        self, ip: str, attempts: int, last_error: BaseException | None
    ) -> None:
        super().__init__(
            f"fetcher {ip} gave up after {attempts} attempts: {last_error}"
        )
        self.ip = ip
        self.attempts = attempts
        self.last_error = last_error


class FrameDeadLettered(CollectionError):
    """A frame exhausted every fetcher and was parked on the DLQ."""


class ErrorClass(enum.Enum):
    """What a caller should do with an error mid-crawl."""

    #: Back-pressure: wait out the ``retry_after`` hint and retry.
    RATE_LIMITED = "rate_limited"
    #: Transient fault (503, timeout, truncated/degraded data, open
    #: breaker): retry with backoff, possibly on another fetcher.
    RETRYABLE = "retryable"
    #: Retrying cannot help (bad request, bad configuration, exhausted
    #: budgets): propagate.
    FATAL = "fatal"


def classify_error_type(error_type: type[BaseException]) -> ErrorClass:
    """Classify an exception *type*; total over :class:`ReproError`.

    The table is ordered most-specific first.  ``FrameCrawlError`` is
    fatal even though it wraps retryable causes: it means a retry budget
    is already spent.  ``TickCrashError`` and ``WatchdogTimeout`` are
    retryable *by the supervisor* — they surface above the per-frame
    retry loop (which never sees them), and the streaming tick they
    kill is retry-safe by construction.  ``SupervisorHalted`` is fatal:
    it means the restart budget itself is spent.  Anything unlisted —
    including future :class:`ReproError` subclasses — defaults to
    fatal, so a new fault type must be added here (and to the
    classifier property test) before the crawl will retry it.
    """
    if issubclass(error_type, RateLimitError):
        return ErrorClass.RATE_LIMITED
    if issubclass(error_type, (SupervisorHalted, FrameCrawlError, FrameDeadLettered)):
        return ErrorClass.FATAL
    if issubclass(
        error_type,
        (TransientServiceError, CircuitOpenError, TickCrashError, WatchdogTimeout),
    ):
        return ErrorClass.RETRYABLE
    return ErrorClass.FATAL


def classify_error(error: BaseException) -> ErrorClass:
    """Classify an exception instance (see :func:`classify_error_type`)."""
    return classify_error_type(type(error))
