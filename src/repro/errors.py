"""Exception hierarchy for the SIFT reproduction.

All errors raised by this package derive from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause while
still distinguishing the fine-grained conditions below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters."""


class TimeGridError(ReproError):
    """A timestamp or range does not align with the hourly grid."""


class UnknownGeoError(ReproError):
    """A geography code does not name a supported US state."""

    def __init__(self, geo: str) -> None:
        super().__init__(f"unknown geography: {geo!r}")
        self.geo = geo


class UnknownTermError(ReproError):
    """A search term is not present in the simulated search world."""

    def __init__(self, term: str) -> None:
        super().__init__(f"unknown search term: {term!r}")
        self.term = term


class TrendsRequestError(ReproError):
    """The Trends service rejected a malformed request."""


class RateLimitError(TrendsRequestError):
    """The per-IP request budget is exhausted.

    Attributes:
        retry_after: seconds the caller should wait before retrying.
    """

    def __init__(self, ip: str, retry_after: float) -> None:
        super().__init__(
            f"rate limit exceeded for {ip}; retry after {retry_after:.2f}s"
        )
        self.ip = ip
        self.retry_after = retry_after


class StitchingError(ReproError):
    """Consecutive time frames could not be stitched together."""


class ConvergenceError(ReproError):
    """Iterative averaging failed to converge within the round budget."""


class DetectionError(ReproError):
    """The spike detector received an invalid series."""


class DatabaseError(ReproError):
    """The collection database rejected an operation."""


class CollectionError(ReproError):
    """The collection scheduler could not complete a workload."""
