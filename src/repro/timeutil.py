"""Hour-grid time utilities shared by the whole pipeline.

Everything inside the package works on a *UTC hour grid*: timestamps are
timezone-aware ``datetime`` objects whose minute/second/microsecond parts
are zero.  Series positions are integer hour offsets from a grid origin.
Google-Trends-style weekly frames are produced by
:func:`weekly_frames`, which mirrors the paper's "consecutive and
overlapping weekly time frames" partitioning.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator
from datetime import datetime, timedelta, timezone

from repro.errors import TimeGridError

HOUR = timedelta(hours=1)
HOURS_PER_WEEK = 168
HOURS_PER_DAY = 24

#: Default overlap between consecutive weekly frames, in hours.  One day
#: of shared data is enough to estimate the inter-frame scaling ratio
#: while keeping the number of frames close to ``ceil(span / week)``.
DEFAULT_OVERLAP_HOURS = 24


def utc(year: int, month: int, day: int, hour: int = 0) -> datetime:
    """Build a timezone-aware UTC datetime on the hour grid."""
    return datetime(year, month, day, hour, tzinfo=timezone.utc)


def ensure_grid(moment: datetime) -> datetime:
    """Validate that *moment* lies on the UTC hour grid and return it.

    Naive datetimes are rejected rather than silently assumed to be UTC:
    mixing naive and aware datetimes is the classic source of off-by-
    timezone bugs in measurement pipelines.
    """
    if moment.tzinfo is None:
        raise TimeGridError(f"naive datetime not allowed: {moment!r}")
    moment = moment.astimezone(timezone.utc)
    if moment.minute or moment.second or moment.microsecond:
        raise TimeGridError(f"not aligned to the hour grid: {moment!r}")
    return moment


def hour_index(origin: datetime, moment: datetime) -> int:
    """Integer hour offset of *moment* from *origin* (both on the grid)."""
    origin = ensure_grid(origin)
    moment = ensure_grid(moment)
    delta = moment - origin
    seconds = delta.total_seconds()
    if seconds != int(seconds) or int(seconds) % 3600:
        raise TimeGridError(f"{moment!r} is not a whole number of hours from {origin!r}")
    return int(seconds) // 3600


def hour_at(origin: datetime, index: int) -> datetime:
    """Datetime at integer hour offset *index* from *origin*."""
    return ensure_grid(origin) + index * HOUR


def hour_range(start: datetime, end: datetime) -> Iterator[datetime]:
    """Yield every grid hour in ``[start, end)``."""
    start = ensure_grid(start)
    end = ensure_grid(end)
    current = start
    while current < end:
        yield current
        current += HOUR


def span_hours(start: datetime, end: datetime) -> int:
    """Number of grid hours in ``[start, end)``."""
    count = hour_index(start, end)
    if count < 0:
        raise TimeGridError(f"range end {end!r} precedes start {start!r}")
    return count


@dataclasses.dataclass(frozen=True, slots=True)
class TimeWindow:
    """A half-open ``[start, end)`` window on the hour grid."""

    start: datetime
    end: datetime
    #: Span length, precomputed once — ``hours`` is hot-path data.
    _hours: int = dataclasses.field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        ensure_grid(self.start)
        ensure_grid(self.end)
        if self.end <= self.start:
            raise TimeGridError(f"empty window: {self.start!r} .. {self.end!r}")
        object.__setattr__(self, "_hours", span_hours(self.start, self.end))

    @property
    def hours(self) -> int:
        return self._hours

    def contains(self, moment: datetime) -> bool:
        return self.start <= moment < self.end

    def overlaps(self, other: "TimeWindow") -> bool:
        return self.start < other.end and other.start < self.end

    def intersection_hours(self, other: "TimeWindow") -> int:
        """Number of grid hours shared with *other* (0 when disjoint)."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if hi <= lo:
            return 0
        return span_hours(lo, hi)

    def shift(self, hours: int) -> "TimeWindow":
        return TimeWindow(self.start + hours * HOUR, self.end + hours * HOUR)


def weekly_frames(
    window: TimeWindow, overlap_hours: int = DEFAULT_OVERLAP_HOURS
) -> list[TimeWindow]:
    """Partition *window* into consecutive, overlapping weekly frames.

    Mirrors the paper's step (2): each frame is at most one week long
    (the GT limit for hourly blocks) and consecutive frames share
    *overlap_hours* hours so the stitching stage can estimate the
    piecewise normalization ratio from the intersection.

    The final frame is right-aligned to the window end so no hour is
    lost, which can make the last overlap larger than requested (never
    smaller, unless the whole window is shorter than one week).
    """
    if not 0 < overlap_hours < HOURS_PER_WEEK:
        raise TimeGridError(
            f"overlap must be in (0, {HOURS_PER_WEEK}): got {overlap_hours}"
        )
    total = window.hours
    if total <= HOURS_PER_WEEK:
        return [window]
    step = HOURS_PER_WEEK - overlap_hours
    frames = []
    start = 0
    while start + HOURS_PER_WEEK < total:
        frames.append(
            TimeWindow(
                hour_at(window.start, start),
                hour_at(window.start, start + HOURS_PER_WEEK),
            )
        )
        start += step
    frames.append(TimeWindow(hour_at(window.end, -HOURS_PER_WEEK), window.end))
    return frames


def daily_frame(day: datetime) -> TimeWindow:
    """The one-day frame covering the UTC day of *day*.

    Used for the paper's fine-grained rising-term fetches on spike days.
    """
    day = ensure_grid(day)
    start = day.replace(hour=0)
    return TimeWindow(start, start + timedelta(days=1))


def format_spike_time(moment: datetime) -> str:
    """Render a spike time like the paper's tables, e.g. ``15 Feb. 2021-10h``."""
    moment = ensure_grid(moment)
    return f"{moment.day:02d} {moment.strftime('%b')}. {moment.year}-{moment.hour:02d}h"
