"""The ANT outages data set: records, builder, and queries.

Mirrors the shape of the real data set the paper compares against: one
record per (block, outage) with the block's subnet, the outage start
time, and its duration, augmented with Maxmind-style state geolocation.
"""

from __future__ import annotations

import dataclasses
from datetime import datetime, timedelta

import numpy as np

from repro.ant.blocks import (
    AddressBlock,
    BlockUniverseConfig,
    blocks_by_state,
    build_universe,
)
from repro.ant.probing import (
    DownInterval,
    ProbingConfig,
    affected_block_mask,
    event_downtime,
    merge_intervals,
)
from repro.timeutil import TimeWindow
from repro.world.scenarios import Scenario


@dataclasses.dataclass(frozen=True, slots=True)
class AntOutage:
    """One outage record: a block that went dark."""

    block_id: int
    prefix: str
    state: str  # geolocated state (what an analyst would see)
    start: datetime
    duration_hours: float

    @property
    def end(self) -> datetime:
        return self.start + timedelta(hours=self.duration_hours)

    def overlaps(self, window: TimeWindow) -> bool:
        return self.start < window.end and window.start < self.end


class AntDataset:
    """Queryable collection of ANT outage records."""

    def __init__(self, records: tuple[AntOutage, ...]) -> None:
        self.records = tuple(sorted(records, key=lambda r: r.start))
        self._by_state: dict[str, list[AntOutage]] = {}
        for record in self.records:
            self._by_state.setdefault(record.state, []).append(record)

    def __len__(self) -> int:
        return len(self.records)

    def in_state(self, state: str) -> tuple[AntOutage, ...]:
        return tuple(self._by_state.get(state.removeprefix("US-"), ()))

    def overlapping(self, state: str, window: TimeWindow) -> tuple[AntOutage, ...]:
        """Records in *state* whose downtime intersects *window*."""
        return tuple(
            record for record in self.in_state(state) if record.overlaps(window)
        )

    def distinct_blocks_down(self, state: str, window: TimeWindow) -> int:
        """How many distinct blocks were down in *state* during *window*."""
        return len({record.block_id for record in self.overlapping(state, window)})

    def distinct_blocks_starting(self, state: str, window: TimeWindow) -> int:
        """Distinct blocks whose outage *began* in *state* during *window*.

        Tracing a specific failure means looking for blocks that went
        dark when it started; blocks already dark from earlier,
        unrelated failures must not count as confirmation.
        """
        return len(
            {
                record.block_id
                for record in self.in_state(state)
                if window.contains(record.start)
            }
        )

    @classmethod
    def build(
        cls,
        scenario: Scenario,
        universe: BlockUniverseConfig | None = None,
        probing: ProbingConfig | None = None,
        blocks: tuple[AddressBlock, ...] | None = None,
    ) -> "AntDataset":
        """Derive the full data set from the ground-truth scenario.

        Vectorized per (event, state): one hashed draw decides which of
        the state's blocks each event darkens, then per-block intervals
        are merged.  Equivalent to probing every block round by round,
        at a tiny fraction of the cost.
        """
        probing = probing or ProbingConfig()
        if blocks is None:
            blocks = build_universe(universe)
        by_true_state = blocks_by_state(blocks, geolocated=False)
        per_block: dict[int, list[DownInterval]] = {}
        block_lookup = {block.block_id: block for block in blocks}
        for state_code, state_blocks in by_true_state.items():
            ids = np.array([block.block_id for block in state_blocks], dtype=np.uint64)
            for event in scenario.events_in_state(state_code):
                if not event.network_visible:
                    continue
                downtime = event_downtime(event, state_code, probing)
                if downtime is None:
                    continue
                mask = affected_block_mask(event, state_code, ids, probing)
                for block_id in ids[mask]:
                    per_block.setdefault(int(block_id), []).append(
                        DownInterval(
                            block_id=int(block_id),
                            start=downtime[0],
                            end=downtime[1],
                            event_id=event.event_id,
                        )
                    )
        records: list[AntOutage] = []
        for block_id, intervals in per_block.items():
            block = block_lookup[block_id]
            for interval in merge_intervals(intervals):
                records.append(
                    AntOutage(
                        block_id=block.block_id,
                        prefix=block.prefix,
                        state=block.geolocated_state,
                        start=interval.start,
                        duration_hours=interval.duration_hours,
                    )
                )
        return cls(tuple(records))
