"""ANT outages data set substrate: active probing over address blocks.

A Trinocular-style active-probing simulator and the queryable outage
data set derived from it, used to cross-validate SIFT's user-driven
findings the way the paper does (§4.1-§4.2 and future work §6).
"""

from repro.ant.blocks import (
    AddressBlock,
    BlockUniverseConfig,
    blocks_by_state,
    build_universe,
)
from repro.ant.characterize import CharacterizationReport, characterize
from repro.ant.compare import (
    CrossValidationConfig,
    CrossValidationReport,
    TraceResult,
    cross_validate,
    trace_spike,
)
from repro.ant.dataset import AntDataset, AntOutage
from repro.ant.probing import (
    PROBE_ROUND_MINUTES,
    DownInterval,
    ProbingConfig,
    block_down_intervals,
    probe_block,
)

__all__ = [
    "AddressBlock",
    "CharacterizationReport",
    "characterize",
    "AntDataset",
    "AntOutage",
    "BlockUniverseConfig",
    "CrossValidationConfig",
    "CrossValidationReport",
    "DownInterval",
    "PROBE_ROUND_MINUTES",
    "ProbingConfig",
    "TraceResult",
    "block_down_intervals",
    "blocks_by_state",
    "build_universe",
    "cross_validate",
    "probe_block",
    "trace_spike",
]
