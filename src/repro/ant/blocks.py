"""Probed address blocks and their geolocation.

The ANT outages data set reports reachability of IP subnets probed from
six vantage points; we model the probed universe as a set of
:class:`AddressBlock` records — one per /24-like block — each located
in a state and carrying a responsiveness class.

Two real-world artifacts are modeled because the paper's findings hinge
on them:

* **invisible populations** — only a small fraction of the address
  space answers probes at all (3.6% per Heidemann et al.), and mobile
  networks in particular do not; the block universe therefore only
  contains *fixed-line* responsive blocks, which is precisely why the
  T-Mobile outage cannot appear in ANT data;
* **geolocation error** — ANT is augmented with Maxmind-style
  IP-geolocation, which misplaces a few percent of blocks into a
  neighboring-but-wrong state.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.rand import hashed_uniform, stable_key
from repro.world.states import ALL_CODES, STATES


@dataclasses.dataclass(frozen=True, slots=True)
class AddressBlock:
    """One probed /24-like block."""

    block_id: int
    prefix: str  # synthetic documentation prefix, e.g. "192.0.37.0/24"
    state: str  # ground-truth state
    geolocated_state: str  # what Maxmind-style geolocation reports


@dataclasses.dataclass(frozen=True, slots=True)
class BlockUniverseConfig:
    """How the probed block universe is laid out."""

    #: Probed, responsive blocks per million inhabitants.
    blocks_per_million: float = 12.0
    #: Fraction of blocks whose geolocation lands in the wrong state.
    geolocation_error_rate: float = 0.04
    seed: int = 424242

    def __post_init__(self) -> None:
        if self.blocks_per_million <= 0:
            raise ConfigurationError(
                f"blocks_per_million must be positive: {self.blocks_per_million}"
            )
        if not 0.0 <= self.geolocation_error_rate < 1.0:
            raise ConfigurationError(
                f"geolocation_error_rate must be in [0, 1): "
                f"{self.geolocation_error_rate}"
            )


def build_universe(config: BlockUniverseConfig | None = None) -> tuple[AddressBlock, ...]:
    """Deterministically lay out the probed block universe."""
    config = config or BlockUniverseConfig()
    blocks: list[AddressBlock] = []
    block_id = 0
    for state in STATES:
        count = max(1, int(round(state.population / 1e6 * config.blocks_per_million)))
        key = stable_key(config.seed, "geo-error", state.code)
        mislocate = hashed_uniform(key, np.arange(count))
        wrong_pick = hashed_uniform(key, np.arange(count), salt=1)
        for i in range(count):
            geolocated = state.code
            if mislocate[i] < config.geolocation_error_rate:
                # Misplace into a deterministic "nearby" state: any other
                # state picked by hash — Maxmind errors are not actually
                # adjacency-constrained at state granularity.
                others = [code for code in ALL_CODES if code != state.code]
                geolocated = others[int(wrong_pick[i] * len(others)) % len(others)]
            blocks.append(
                AddressBlock(
                    block_id=block_id,
                    prefix=f"192.{(block_id >> 8) & 255}.{block_id & 255}.0/24",
                    state=state.code,
                    geolocated_state=geolocated,
                )
            )
            block_id += 1
    return tuple(blocks)


def blocks_by_state(
    blocks: tuple[AddressBlock, ...], geolocated: bool = True
) -> dict[str, list[AddressBlock]]:
    """Index blocks by (geolocated or true) state."""
    index: dict[str, list[AddressBlock]] = {}
    for block in blocks:
        code = block.geolocated_state if geolocated else block.state
        index.setdefault(code, []).append(block)
    return index
