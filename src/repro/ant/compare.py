"""Cross-validating SIFT findings against the ANT outages data set.

The paper traces its most impactful/extensive spikes in the ANT data
and finds a systematic pattern: network/power events are confirmed,
while mobile (T-Mobile), DNS (Akamai), and application (Youtube) events
escape active probing.  This module implements that lookup — "does ANT
show an unusual number of dark blocks in this state around this spike?"
— and a report generator for batches of spikes.
"""

from __future__ import annotations

import dataclasses
from datetime import timedelta

from repro.ant.dataset import AntDataset
from repro.core.spikes import Spike
from repro.errors import ConfigurationError
from repro.timeutil import TimeWindow


@dataclasses.dataclass(frozen=True, slots=True)
class CrossValidationConfig:
    """When does ANT *confirm* a SIFT spike?

    Absolute block counts are not enough: a populous state always has a
    trickle of dark blocks from unrelated background failures, so a
    coincidental handful must not "confirm" an application-layer spike.
    Confirmation therefore requires the spike window's dark-block count
    to exceed both an absolute floor and a multiple of the state's
    *expected background* for a window of the same length.
    """

    #: Distinct dark blocks in the spike's state/window to count as seen.
    min_blocks: int = 3
    #: Dark blocks must exceed this multiple of the state's background.
    background_ratio: float = 3.0
    #: Slack added around the spike window: probing sees the failure
    #: slightly before users search, and block recovery lags.
    slack_hours: int = 2

    def __post_init__(self) -> None:
        if self.min_blocks < 1:
            raise ConfigurationError(f"min_blocks must be >= 1: {self.min_blocks}")
        if self.background_ratio < 1.0:
            raise ConfigurationError(
                f"background_ratio must be >= 1: {self.background_ratio}"
            )
        if self.slack_hours < 0:
            raise ConfigurationError(f"slack_hours must be >= 0: {self.slack_hours}")


@dataclasses.dataclass(frozen=True, slots=True)
class TraceResult:
    """Outcome of tracing one spike in the ANT data."""

    spike: Spike
    blocks_down: int
    expected_background: float
    confirmed: bool


def expected_background_blocks(
    dataset: AntDataset,
    state: str,
    window_hours: float,
    exclude: TimeWindow | None = None,
) -> float:
    """Expected distinct dark blocks in a *random* window of this length.

    A record of duration ``d`` intersects a uniformly-placed window of
    length ``L`` with probability ``(d + L) / span``; summing over the
    state's records gives the expectation (block double-counting is
    negligible at background rates).

    Records overlapping *exclude* are left out: when estimating the
    background around a candidate outage, the outage's own darkness must
    not inflate its null hypothesis.
    """
    records = dataset.in_state(state)
    if exclude is not None:
        records = tuple(r for r in records if not r.overlaps(exclude))
    if not records:
        return 0.0
    span_start = min(record.start for record in records)
    span_end = max(record.end for record in records)
    span_hours = max((span_end - span_start).total_seconds() / 3600.0, window_hours)
    return sum(
        min(record.duration_hours + window_hours, span_hours) / span_hours
        for record in records
    )


def expected_background_starts(
    dataset: AntDataset,
    state: str,
    window_hours: float,
    exclude: TimeWindow | None = None,
) -> float:
    """Expected outage *onsets* in a random window of this length."""
    records = dataset.in_state(state)
    if exclude is not None:
        records = tuple(r for r in records if not exclude.contains(r.start))
    if not records:
        return 0.0
    span_start = min(record.start for record in records)
    span_end = max(record.end for record in records)
    span_hours = max((span_end - span_start).total_seconds() / 3600.0, window_hours)
    return len(records) * window_hours / span_hours


def trace_spike(
    dataset: AntDataset,
    spike: Spike,
    config: CrossValidationConfig | None = None,
) -> TraceResult:
    """Look one spike up in the ANT data set.

    Tracing is *onset-matched*: the spike is confirmed when an unusual
    number of distinct blocks went dark around the spike's start.
    Blocks darkened by unrelated earlier/later failures inside the
    spike's (possibly long) window do not count — which is how a manual
    analyst distinguishes "the T-Mobile outage" from "some other CA
    problem that week".
    """
    config = config or CrossValidationConfig()
    slack = timedelta(hours=config.slack_hours)
    # Users often search slightly after packets stop: look a little
    # further back than forward.
    window = TimeWindow(spike.start - slack, spike.start + slack)
    blocks_down = dataset.distinct_blocks_starting(spike.state, window)
    background = expected_background_starts(
        dataset, spike.state, window.hours, exclude=window
    )
    confirmed = blocks_down >= max(
        config.min_blocks, config.background_ratio * background
    )
    return TraceResult(
        spike=spike,
        blocks_down=blocks_down,
        expected_background=background,
        confirmed=confirmed,
    )


@dataclasses.dataclass(frozen=True)
class CrossValidationReport:
    """Batch tracing results plus headline ratios."""

    results: tuple[TraceResult, ...]

    @property
    def confirmed(self) -> tuple[TraceResult, ...]:
        return tuple(result for result in self.results if result.confirmed)

    @property
    def missed(self) -> tuple[TraceResult, ...]:
        return tuple(result for result in self.results if not result.confirmed)

    @property
    def confirmation_rate(self) -> float:
        if not self.results:
            return 0.0
        return len(self.confirmed) / len(self.results)


def cross_validate(
    dataset: AntDataset,
    spikes: list[Spike] | tuple[Spike, ...],
    config: CrossValidationConfig | None = None,
) -> CrossValidationReport:
    """Trace a batch of spikes in the ANT data set."""
    results = tuple(trace_spike(dataset, spike, config) for spike in spikes)
    return CrossValidationReport(results=results)
