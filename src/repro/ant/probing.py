"""Active probing over the block universe (Trinocular-style).

The ANT methodology probes every tracked block in eleven-minute rounds
and flags a block as down after consecutive unreachable rounds.  The
simulator derives each block's *down intervals* from the ground-truth
scenario:

* only **network-visible** events (fixed-line ISP failures, power
  outages, fiber cuts) take blocks down — cloud/CDN/application and
  mobile-carrier events leave fixed-line blocks ping-responsive;
* an event takes down a cause-and-intensity-dependent *fraction* of the
  blocks in each affected state (a severe power outage darkens most of
  a state's blocks, a single-ISP failure only that provider's share);
* the network-level downtime is somewhat shorter than the user-interest
  window SIFT measures (users keep searching after service returns).

Probe outcomes are quantized onto the 11-minute round grid, and an
outage is recorded only when it spans at least ``min_down_rounds``
consecutive rounds, like the real pipeline's de-noising.
"""

from __future__ import annotations

import dataclasses
from datetime import datetime, timedelta, timezone

from repro.ant.blocks import AddressBlock
from repro.errors import ConfigurationError
from repro.rand import hashed_uniform, stable_key
from repro.timeutil import TimeWindow
from repro.world.events import Cause, OutageEvent
from repro.world.scenarios import Scenario

import numpy as np

PROBE_ROUND_MINUTES = 11

#: Fraction of a state's blocks an event takes down, per intensity
#: unit.  Power events darken broadly; a single ISP's failure touches
#: only its customer base.
_AFFECTED_PER_INTENSITY = {
    Cause.POWER_WEATHER: 1.0 / 45.0,
    Cause.POWER_GRID: 1.0 / 45.0,
    Cause.ISP: 1.0 / 90.0,
    Cause.OTHER: 1.0 / 70.0,
}

#: Network downtime as a fraction of the user-interest window: users
#: keep searching (and the spike keeps running) after packets flow again.
_DOWNTIME_FRACTION = 0.8


@dataclasses.dataclass(frozen=True, slots=True)
class ProbingConfig:
    """Probing and de-noising parameters."""

    min_down_rounds: int = 2  # consecutive failed rounds before "down"
    max_affected_fraction: float = 0.95
    seed: int = 1313

    def __post_init__(self) -> None:
        if self.min_down_rounds < 1:
            raise ConfigurationError(
                f"min_down_rounds must be >= 1: {self.min_down_rounds}"
            )
        if not 0.0 < self.max_affected_fraction <= 1.0:
            raise ConfigurationError(
                f"max_affected_fraction must be in (0, 1]: "
                f"{self.max_affected_fraction}"
            )


@dataclasses.dataclass(frozen=True, slots=True)
class DownInterval:
    """One contiguous unreachability interval of one block."""

    block_id: int
    start: datetime
    end: datetime
    event_id: str

    @property
    def duration_minutes(self) -> int:
        return int((self.end - self.start).total_seconds() // 60)

    @property
    def duration_hours(self) -> float:
        return self.duration_minutes / 60.0


def affected_fraction(event: OutageEvent, intensity: float, config: ProbingConfig) -> float:
    """Share of a state's blocks the event takes down."""
    per_unit = _AFFECTED_PER_INTENSITY.get(event.cause)
    if per_unit is None:
        return 0.0  # cloud / application / mobile: not network-visible
    return min(config.max_affected_fraction, intensity * per_unit)


#: Global origin of the probing round grid.  A fixed epoch keeps every
#: interval on one phase, so merged intervals stay round-aligned.
PROBE_EPOCH = datetime(2020, 1, 1, tzinfo=timezone.utc)


def quantize_to_rounds(start: datetime, end: datetime) -> tuple[datetime, datetime]:
    """Snap an interval onto the global 11-minute probing grid (outward)."""
    round_span = timedelta(minutes=PROBE_ROUND_MINUTES)
    offset = (start - PROBE_EPOCH) // round_span
    snapped_start = PROBE_EPOCH + offset * round_span
    rounds = -(-(end - snapped_start) // round_span)  # ceil division
    return snapped_start, snapped_start + rounds * round_span


def event_downtime(
    event: OutageEvent, state: str, config: ProbingConfig
) -> tuple[datetime, datetime] | None:
    """Round-quantized downtime window of *event* in *state*, if any."""
    impact = event.impact_on(state)
    if impact is None:
        return None
    downtime_hours = max(
        PROBE_ROUND_MINUTES / 60.0,
        impact.interest_hours * _DOWNTIME_FRACTION,
    )
    start, end = quantize_to_rounds(
        impact.onset, impact.onset + timedelta(hours=downtime_hours)
    )
    min_span = timedelta(minutes=PROBE_ROUND_MINUTES * config.min_down_rounds)
    if end - start < min_span:
        return None  # too short for the de-noiser to trust
    return start, end


def affected_block_mask(
    event: OutageEvent,
    state: str,
    block_ids: np.ndarray,
    config: ProbingConfig,
) -> np.ndarray:
    """Which of *block_ids* the event takes down (vectorized, hashed)."""
    impact = event.impact_on(state)
    if impact is None or not event.network_visible:
        return np.zeros(block_ids.shape, dtype=bool)
    fraction = affected_fraction(event, impact.intensity, config)
    if fraction <= 0:
        return np.zeros(block_ids.shape, dtype=bool)
    key = stable_key(config.seed, "affected", event.event_id)
    draws = hashed_uniform(key, block_ids.astype(np.uint64))
    return draws < fraction


def block_down_intervals(
    block: AddressBlock,
    scenario: Scenario,
    config: ProbingConfig | None = None,
) -> list[DownInterval]:
    """All down intervals of one block over the scenario, merged."""
    config = config or ProbingConfig()
    raw: list[DownInterval] = []
    one = np.array([block.block_id], dtype=np.uint64)
    for event in scenario.events_in_state(block.state):
        if not affected_block_mask(event, block.state, one, config)[0]:
            continue
        downtime = event_downtime(event, block.state, config)
        if downtime is None:
            continue
        raw.append(
            DownInterval(
                block_id=block.block_id,
                start=downtime[0],
                end=downtime[1],
                event_id=event.event_id,
            )
        )
    return merge_intervals(raw)


def merge_intervals(intervals: list[DownInterval]) -> list[DownInterval]:
    """Merge overlapping/adjacent down intervals of the same block."""
    merged: list[DownInterval] = []
    for interval in sorted(intervals, key=lambda item: item.start):
        if merged and interval.start <= merged[-1].end:
            last = merged[-1]
            merged[-1] = DownInterval(
                block_id=last.block_id,
                start=last.start,
                end=max(last.end, interval.end),
                event_id=last.event_id,
            )
        else:
            merged.append(interval)
    return merged


def probe_block(
    block: AddressBlock,
    window: TimeWindow,
    scenario: Scenario,
    config: ProbingConfig | None = None,
) -> np.ndarray:
    """Boolean reachability per probing round in *window* (True = up).

    This is the raw probing view; the data set builder uses the interval
    form directly, but tests and examples can inspect round-level
    behaviour here.
    """
    rounds = int(
        (window.end - window.start).total_seconds()
        // (PROBE_ROUND_MINUTES * 60)
    )
    up = np.ones(rounds, dtype=bool)
    for interval in block_down_intervals(block, scenario, config):
        if interval.end <= window.start or interval.start >= window.end:
            continue
        first = max(
            0,
            int(
                (interval.start - window.start).total_seconds()
                // (PROBE_ROUND_MINUTES * 60)
            ),
        )
        last = min(
            rounds,
            int(
                -(
                    -(interval.end - window.start).total_seconds()
                    // (PROBE_ROUND_MINUTES * 60)
                )
            ),
        )
        up[first:last] = False
    return up
