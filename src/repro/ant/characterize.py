"""Joint SIFT / ANT characterization (the paper's §6 future work).

The paper closes with two open questions: *which ANT outages does SIFT
consider impactful*, and *what separates the outages SIFT detects but
ANT does not*.  With the shared ground truth, both directions are
implementable:

* every SIFT spike is traced in the ANT data (confirmed / missed), and
* every sizable ANT darkening episode is checked for a concurrent SIFT
  spike in the same state (sensed / unsensed by users).

The resulting three-way split — seen by both, SIFT-only, ANT-only —
with cause breakdowns is what the characterization benchmark prints.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from datetime import timedelta

from repro.ant.compare import CrossValidationConfig, trace_spike
from repro.ant.dataset import AntDataset
from repro.core.spikes import Spike, SpikeSet
from repro.timeutil import TimeWindow
from repro.world.scenarios import Scenario


@dataclasses.dataclass(frozen=True)
class CharacterizationReport:
    """Three-way visibility split between SIFT and ANT."""

    seen_by_both: tuple[Spike, ...]
    sift_only: tuple[Spike, ...]
    ant_only_episodes: int  # ANT darkening episodes with no SIFT spike
    sift_only_causes: Counter
    both_causes: Counter

    @property
    def sift_only_share(self) -> float:
        total = len(self.seen_by_both) + len(self.sift_only)
        return len(self.sift_only) / total if total else 0.0


def _spike_cause(spike: Spike, scenario: Scenario) -> str:
    window = TimeWindow(spike.start, spike.end)
    events = [
        event
        for event in scenario.events_in_state(spike.state)
        if event.impact_on(spike.state).window.overlaps(window)
    ]
    if not events:
        return "noise"
    strongest = max(events, key=lambda e: e.impact_on(spike.state).intensity)
    return strongest.cause.value


def characterize(
    spikes: SpikeSet,
    dataset: AntDataset,
    scenario: Scenario,
    top_spikes: int = 200,
    config: CrossValidationConfig | None = None,
) -> CharacterizationReport:
    """Cross-characterize the most impactful spikes against ANT."""
    config = config or CrossValidationConfig()
    both: list[Spike] = []
    sift_only: list[Spike] = []
    sift_only_causes: Counter = Counter()
    both_causes: Counter = Counter()
    considered = spikes.top_by_duration(top_spikes)
    for spike in considered:
        result = trace_spike(dataset, spike, config)
        cause = _spike_cause(spike, scenario)
        if result.confirmed:
            both.append(spike)
            both_causes[cause] += 1
        else:
            sift_only.append(spike)
            sift_only_causes[cause] += 1
    ant_only = _count_unsensed_episodes(spikes, dataset)
    return CharacterizationReport(
        seen_by_both=tuple(both),
        sift_only=tuple(sift_only),
        ant_only_episodes=ant_only,
        sift_only_causes=sift_only_causes,
        both_causes=both_causes,
    )


def _count_unsensed_episodes(
    spikes: SpikeSet, dataset: AntDataset, min_blocks: int = 10
) -> int:
    """ANT darkening episodes with no concurrent SIFT spike.

    Episodes are bucketed per (state, start hour): at least *min_blocks*
    blocks going dark in one state within one hour is an ANT-visible
    event; it is *unsensed* when no SIFT spike peaks within +-6 hours in
    that state (e.g., night outages users sleep through).
    """
    peaks_by_state: dict[str, list] = {}
    for spike in spikes:
        peaks_by_state.setdefault(spike.state, []).append(spike.peak)
    episodes: dict[tuple[str, str], int] = {}
    for record in dataset.records:
        key = (record.state, record.start.strftime("%Y-%m-%dT%H"))
        episodes[key] = episodes.get(key, 0) + 1
    unsensed = 0
    slack = timedelta(hours=6)
    for (state, hour_iso), blocks in episodes.items():
        if blocks < min_blocks:
            continue
        from datetime import datetime, timezone

        start = datetime.strptime(hour_iso, "%Y-%m-%dT%H").replace(
            tzinfo=timezone.utc
        )
        peaks = peaks_by_state.get(state, ())
        if not any(abs(peak - start) <= slack for peak in peaks):
            unsensed += 1
    return unsensed
