"""Columnar read-index over a finished study: the serving hot path.

Every ``/api/*`` request used to re-walk the study's Python object
graph — slicing :class:`~repro.core.series.HourlyTimeline` (a numpy
copy plus a per-value ``round`` loop), re-filtering
:class:`~repro.core.spikes.SpikeSet` through Python predicates, and
recomputing ``Outage.annotations`` (a counting sort) on every hit.
Outage results are read-mostly snapshots — Trinocular- and IODA-style
dashboards have the same shape — so :class:`QueryIndex` materializes
the query-shaped artifacts once per snapshot:

* per-geo value columns with prefix sums (window sums, means and
  non-zero counts in O(1)) and block maxima (window peaks in O(n/B));
* vectorized display rounding (one ``np.round`` per response window
  instead of a per-value Python ``round`` loop), with the rounded
  payloads held by the response cache;
* spike tables in peak order with a duration-sorted permutation: a
  ``min_hours`` filter is one ``searchsorted`` plus an index gather;
* outage rows pre-rendered to JSON-safe dicts with a footprint-sorted
  permutation for ``min_states`` cuts (the merged-annotation ranking
  runs once per snapshot, not once per request);
* a study-wide summary reusing the analysis layer's grouping stats
  (``footprint_cdf``, ``duration_cdf``, ``yearly_counts``) so the web
  tier and the report tables cannot drift apart.

Filters are canonicalized to *cut positions*: ``min_hours=7`` and
``min_hours=9`` selecting the same spikes map to the same cut, so the
response cache collapses equivalent queries into one entry.

The index never copies a timeline it is given: a column keeps a
reference to the study's value array (already contiguous float64), so
a study loaded from the columnar store (:meth:`QueryIndex.from_store`)
serves straight off the memory-mapped ``.npy`` files — the derived
prefix/block artifacts are small, and the raw series pages in lazily.
"""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np

from repro.analysis.area_stats import footprint_cdf, mean_footprint
from repro.analysis.impact import duration_cdf, yearly_counts
from repro.core.area import Outage
from repro.core.pipeline import StudyResult
from repro.core.series import HourlyTimeline
from repro.core.spikes import SpikeSet
from repro.timeutil import TimeWindow, ensure_grid, hour_at, hour_index

#: Block size of the range-maximum index.  A window peak scans at most
#: ``2 * _BLOCK`` raw values plus ``hours / _BLOCK`` block maxima.
_BLOCK = 128


class GeoColumn:
    """Columnar artifacts for one geography's timeline."""

    __slots__ = (
        "geo",
        "term",
        "start",
        "hours",
        "_values",
        "_prefix",
        "_nonzero",
        "_block_max",
        "_buf",
        "_pbuf",
        "_nbuf",
        "_bbuf",
    )

    def __init__(self, timeline: HourlyTimeline) -> None:
        self.geo = timeline.geo
        self.term = timeline.term
        self.start = timeline.start
        values = timeline.values
        if values.dtype != np.float64 or not values.flags["C_CONTIGUOUS"]:
            values = np.ascontiguousarray(values, dtype=np.float64)
        # Zero-copy for the common case: study timelines (and the
        # columnar store's memory-mapped columns) are already
        # contiguous float64, so the column aliases them directly.
        self._values = values
        self.hours = int(values.size)
        self._prefix = np.concatenate(([0.0], np.cumsum(values, dtype=np.float64)))
        self._nonzero = np.concatenate(
            ([0], np.cumsum(values > 0, dtype=np.int64))
        )
        # Block maxima without materializing a padded copy of the
        # series: full blocks reduce through a reshaped view, the
        # ragged tail separately.
        full = self.hours // _BLOCK
        tail = self.hours - full * _BLOCK
        block_max = np.zeros(full + (1 if tail else 0), dtype=np.float64)
        if full:
            block_max[:full] = (
                values[: full * _BLOCK].reshape(full, _BLOCK).max(axis=1)
            )
        if tail:
            block_max[full] = values[full * _BLOCK :].max()
        self._block_max = block_max
        # Growth buffers materialize lazily on the first append; until
        # then the column stays a zero-copy alias of the study arrays.
        self._buf: np.ndarray | None = None
        self._pbuf: np.ndarray | None = None
        self._nbuf: np.ndarray | None = None
        self._bbuf: np.ndarray | None = None

    # -- streaming delta installs --------------------------------------------

    def _ensure_capacity(self, new_hours: int) -> None:
        if self._buf is not None and self._buf.size >= new_hours:
            return
        capacity = max(2 * new_hours, 1024)
        blocks = capacity // _BLOCK + 1
        buf = np.empty(capacity, dtype=np.float64)
        pbuf = np.empty(capacity + 1, dtype=np.float64)
        nbuf = np.empty(capacity + 1, dtype=np.int64)
        bbuf = np.zeros(blocks, dtype=np.float64)
        buf[: self.hours] = self._values
        pbuf[: self.hours + 1] = self._prefix
        nbuf[: self.hours + 1] = self._nonzero
        bbuf[: self._block_max.size] = self._block_max
        self._buf, self._pbuf, self._nbuf, self._bbuf = buf, pbuf, nbuf, bbuf
        self._values = buf[: self.hours]
        self._prefix = pbuf[: self.hours + 1]
        self._nonzero = nbuf[: self.hours + 1]

    def append(self, tail: np.ndarray) -> None:
        """Extend the column in place with newly streamed hours.

        Valid only while every already-indexed hour keeps its value —
        the caller (``QueryIndex.apply_delta``) rebuilds the column
        instead when the renormalization scale moved or the stitcher
        rewrote the prefix.  Prefix sums and non-zero counts extend
        from their last entry; block maxima **recompute** the formerly
        partial last block over its full current extent before
        appending the new full blocks — appending alone would freeze a
        stale partial maximum and hide any taller spike landing inside
        that block's remainder.

        Amortized O(tail): backing buffers grow by doubling.
        """
        tail = np.ascontiguousarray(tail, dtype=np.float64)
        if tail.size == 0:
            return
        old = self.hours
        new = old + int(tail.size)
        self._ensure_capacity(new)
        self._buf[old:new] = tail
        self._values = self._buf[:new]
        self._pbuf[old + 1 : new + 1] = self._pbuf[old] + np.cumsum(
            tail, dtype=np.float64
        )
        self._prefix = self._pbuf[: new + 1]
        self._nbuf[old + 1 : new + 1] = self._nbuf[old] + np.cumsum(
            tail > 0, dtype=np.int64
        )
        self._nonzero = self._nbuf[: new + 1]
        first = old // _BLOCK
        blocks = (new + _BLOCK - 1) // _BLOCK
        for block in range(first, blocks):
            lo = block * _BLOCK
            self._bbuf[block] = self._values[lo : min(lo + _BLOCK, new)].max()
        self._block_max = self._bbuf[:blocks]
        self.hours = new

    def locate(self, window: TimeWindow) -> tuple[int, int]:
        """(lo, hi) hour offsets of *window*; raises for out-of-range."""
        lo = hour_index(self.start, window.start)
        hi = lo + window.hours
        if lo < 0 or hi > self.hours:
            raise ValueError(
                f"window {window.start.isoformat()}..{window.end.isoformat()} "
                f"outside timeline ({self.hours} hours from "
                f"{self.start.isoformat()})"
            )
        return lo, hi

    # -- O(1) / O(n/B) window aggregates ------------------------------------

    def window_sum(self, lo: int, hi: int) -> float:
        return float(self._prefix[hi] - self._prefix[lo])

    def window_mean(self, lo: int, hi: int) -> float:
        if hi <= lo:
            return 0.0
        return self.window_sum(lo, hi) / (hi - lo)

    def window_nonzero(self, lo: int, hi: int) -> int:
        return int(self._nonzero[hi] - self._nonzero[lo])

    def window_peak(self, lo: int, hi: int) -> float:
        if hi <= lo:
            return 0.0
        first, last = lo // _BLOCK, (hi - 1) // _BLOCK
        if first == last:
            return float(self._values[lo:hi].max())
        peak = max(
            float(self._values[lo : (first + 1) * _BLOCK].max()),
            float(self._values[last * _BLOCK : hi].max()),
        )
        if last > first + 1:
            peak = max(peak, float(self._block_max[first + 1 : last].max()))
        return peak

    def rounded_slice(self, lo: int, hi: int) -> list[float]:
        """Display-rounded values for one response window.

        Vectorized and computed per request window (then held by the
        response cache) instead of materializing a rounded copy of the
        whole study up front — the big-study index would otherwise pay
        a Python-object list per geography before serving anything.
        """
        return np.round(self._values[lo:hi], 3).tolist()


class SpikeTable:
    """Per-geo spike rows in peak order, plus a duration permutation.

    Pass the geography's previous table as *prev* when re-rendering
    after a streamed tick: rows for spikes the tick did not touch are
    reused from the old table instead of re-rendered (the ISO-8601
    timestamps dominate the cost of a row).  The reuse key omits
    ``magnitude_rank`` on purpose — a new spike inserting mid-rank
    shifts every rank below it, and patching the rank into a copied row
    is far cheaper than rebuilding the row.  Reused rows are shared
    with the previous table, which is safe because serving treats rows
    as immutable once rendered.
    """

    __slots__ = ("geo", "rows", "_sorted_durations", "_by_duration", "_row_cache")

    def __init__(
        self, geo: str, spikes: SpikeSet, prev: "SpikeTable | None" = None
    ) -> None:
        self.geo = geo
        ordered = tuple(spikes)  # SpikeSet iterates in (peak, geo) order
        cache = prev._row_cache if prev is not None else {}
        self._row_cache: dict[tuple, tuple[dict, int]] = {}
        rows: list[dict] = []
        durations = np.empty(len(ordered), dtype=np.int64)
        for index, spike in enumerate(ordered):
            # Bounds + magnitude + annotations identify a spike within
            # one geography's study (a geo cannot grow two spikes with
            # identical bounds); rank is patched separately.
            key = (
                spike.start,
                spike.peak,
                spike.end,
                spike.magnitude,
                spike.annotations,
            )
            hit = cache.get(key)
            if hit is None:
                row = spike.to_dict()
                duration = spike.duration_hours
            else:
                row, duration = hit
                if row["magnitude_rank"] != spike.magnitude_rank:
                    row = {**row, "magnitude_rank": spike.magnitude_rank}
            self._row_cache[key] = (row, duration)
            rows.append(row)
            durations[index] = duration
        self.rows = tuple(rows)
        self._by_duration = np.argsort(-durations, kind="stable")
        self._sorted_durations = np.sort(durations)

    def cut(self, min_hours: int) -> int:
        """How many spikes survive ``duration >= min_hours``.

        The cut *is* the canonical cache key for the filter: every
        ``min_hours`` selecting the same spikes yields the same cut.
        """
        kept = self._sorted_durations.size - int(
            np.searchsorted(self._sorted_durations, min_hours, side="left")
        )
        return int(kept)

    def select(self, cut: int) -> list[dict]:
        """The *cut* longest spikes, restored to peak order."""
        if cut >= len(self.rows):
            return list(self.rows)
        picked = np.sort(self._by_duration[:cut])
        return [self.rows[index] for index in picked]


class OutageTable:
    """Pre-rendered outage rows with a footprint permutation.

    Like :class:`SpikeTable`, pass the previous table as *prev* when
    re-rendering after a streamed tick.  An outage row depends only on
    its member spikes' geography, bounds and annotations — not their
    magnitudes or ranks — so the reuse key ignores those: a tick that
    merely re-ranked a geography's spikes reuses every outage row.
    """

    __slots__ = ("rows", "_sorted_footprints", "_by_footprint", "_row_cache")

    def __init__(
        self, outages: list[Outage], prev: "OutageTable | None" = None
    ) -> None:
        # Rendering here runs the merged-annotation counting sort once
        # per snapshot instead of once per request.
        cache = prev._row_cache if prev is not None else {}
        self._row_cache: dict[tuple, dict] = {}
        rows: list[dict] = []
        for outage in outages:
            key = tuple(
                (spike.geo, spike.start, spike.end, spike.annotations)
                for spike in outage.spikes
            )
            row = cache.get(key)
            if row is None:
                row = {
                    "label": outage.label,
                    "states": sorted(outage.states),
                    "footprint": outage.footprint,
                    "max_duration_hours": outage.max_duration_hours,
                    "annotations": list(outage.annotations[:3]),
                }
            self._row_cache[key] = row
            rows.append(row)
        self.rows = tuple(rows)
        footprints = np.array(
            [row["footprint"] for row in self.rows], dtype=np.int64
        )
        self._by_footprint = np.argsort(-footprints, kind="stable")
        self._sorted_footprints = np.sort(footprints)

    def cut(self, min_states: int) -> int:
        kept = self._sorted_footprints.size - int(
            np.searchsorted(self._sorted_footprints, min_states, side="left")
        )
        return int(kept)

    def select(self, cut: int) -> list[dict]:
        """The *cut* widest outages, restored to chronological order."""
        if cut >= len(self.rows):
            return list(self.rows)
        picked = np.sort(self._by_footprint[:cut])
        return [self.rows[index] for index in picked]


class QueryIndex:
    """Read-optimized artifacts for one :class:`StudyResult` snapshot."""

    def __init__(self, study: StudyResult) -> None:
        self.study = study
        self.fingerprint = study.fingerprint()
        self.geos: tuple[str, ...] = tuple(sorted(study.states))
        self._columns = {
            geo: GeoColumn(result.timeline)
            for geo, result in study.states.items()
        }
        self._spikes = {
            geo: SpikeTable(geo, study.spikes.in_state(geo))
            for geo in study.states
        }
        self.outages = OutageTable(study.outages)

    def apply_delta(self, study: StudyResult, delta) -> int:
        """Install a streamed tick by mutation instead of rebuilding.

        *delta* is a :class:`repro.streaming.delta.StudyDelta`.  Per
        geography: append the new hours to the existing column when the
        tick was pure growth (``GeoDelta.appendable``), rebuild the
        column only when the renormalization scale moved or the
        stitcher rewrote the prefix, and re-render the spike table only
        when the spike set changed.  Outage rows are study-wide, so
        they re-render whenever any geography's spikes changed — and
        only then (a pure-growth tick reuses them verbatim).  Returns
        the number of columns rebuilt.

        The caller must invalidate cached responses itself (see
        ``SiftWebApp.install_delta``): entries whose window stays below
        a geography's ``old_hours`` remain byte-valid by construction.
        """
        self.study = study
        self.fingerprint = study.fingerprint()
        self.geos = tuple(sorted(study.states))
        rebuilt = 0
        changed_geos = set()
        for geo, geo_delta in delta.geos.items():
            result = study.states[geo]
            column = self._columns.get(geo)
            if column is None or not geo_delta.appendable:
                self._columns[geo] = GeoColumn(result.timeline)
                rebuilt += 1
            elif geo_delta.new_hours > geo_delta.old_hours:
                column.append(result.timeline.values[geo_delta.old_hours :])
            if geo_delta.spikes_changed or geo not in self._spikes:
                changed_geos.add(geo)
        if changed_geos:
            # One pass over the study-wide set (which carries the
            # annotations when enabled) instead of a full in_state scan
            # per changed geography; SpikeSet order is (peak, geo), so
            # each partition arrives already in per-geo peak order.
            by_geo: dict[str, list] = {geo: [] for geo in changed_geos}
            for spike in study.spikes:
                bucket = by_geo.get(spike.geo)
                if bucket is not None:
                    bucket.append(spike)
            for geo, spikes in by_geo.items():
                self._spikes[geo] = SpikeTable(
                    geo, spikes, prev=self._spikes.get(geo)
                )
        if any(geo_delta.spikes_changed for geo_delta in delta.geos.values()):
            self.outages = OutageTable(study.outages, prev=self.outages)
        return rebuilt

    @classmethod
    def from_store(cls, store) -> "QueryIndex":
        """Index a study straight from a columnar store.

        The store's columns stay memory-mapped end to end: the loaded
        timelines alias the ``.npy`` files and :class:`GeoColumn` never
        copies them, so serving a big study costs the derived artifacts
        only — raw series pages fault in on demand.
        """
        return cls(store.load_study())

    # -- lookups -------------------------------------------------------------

    def column(self, geo: str) -> GeoColumn:
        column = self._columns.get(geo)
        if column is None:
            raise ValueError(f"geography not in study: {geo}")
        return column

    def spike_table(self, geo: str) -> SpikeTable:
        table = self._spikes.get(geo)
        if table is None:
            raise ValueError(f"geography not in study: {geo}")
        return table

    # -- payload builders ----------------------------------------------------

    def timeline_payload(self, geo: str, lo: int, hi: int) -> dict:
        column = self.column(geo)
        return {
            "geo": column.geo,
            "term": column.term,
            "start": hour_at(column.start, lo).isoformat(),
            "hours": hi - lo,
            "mean": round(column.window_mean(lo, hi), 3),
            "peak": round(column.window_peak(lo, hi), 3),
            "nonzero_hours": column.window_nonzero(lo, hi),
            "values": column.rounded_slice(lo, hi),
        }

    def spikes_payload(self, geo: str, cut: int) -> dict:
        table = self.spike_table(geo)
        return {"geo": geo, "count": cut, "spikes": table.select(cut)}

    def outages_payload(self, cut: int) -> dict:
        return {"count": cut, "outages": self.outages.select(cut)}

    def summary_payload(self) -> dict:
        """Study-wide headline stats (reuses the analysis layer)."""
        study = self.study
        durations = duration_cdf(study.spikes)
        footprints = footprint_cdf(study.outages)
        return {
            "fingerprint": self.fingerprint,
            "window": {
                "start": study.window.start.isoformat(),
                "end": study.window.end.isoformat(),
            },
            "geo_count": len(self.geos),
            "spike_count": study.spike_count,
            "outage_count": len(study.outages),
            "yearly_spikes": {
                str(year): count
                for year, count in yearly_counts(study.spikes).items()
            },
            "spikes_at_least_3h": round(durations.fraction_at_least(3), 4),
            "outages_at_least_10_states": round(
                footprints.fraction_at_least(10), 4
            ),
            "mean_footprint": round(mean_footprint(study.outages), 3),
            "heavy_hitters": list(study.heavy_hitters),
        }


def parse_window_param(iso: str) -> datetime:
    """Parse a ``start``/``end`` query value (naive ISO means UTC)."""
    return ensure_grid(
        datetime.fromisoformat(iso).replace(tzinfo=timezone.utc)
    )
