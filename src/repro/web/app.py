"""A small web interface over SIFT results (paper §4, Implementation).

The paper's system includes "a running web interface to display the
requested data to the SIFT user"; this is a dependency-free equivalent
on ``http.server``.  The request routing is a pure function
(:meth:`SiftWebApp.handle_path`) so tests can exercise every endpoint
without sockets; :func:`serve` binds the same app to a real port.

Endpoints::

    GET /                      HTML overview with a timeline sketch
    GET /api/geos              known geographies
    GET /api/timeline?geo=US-TX[&start=ISO&end=ISO]   series values
    GET /api/spikes?geo=US-TX[&min_hours=N]           detected spikes
    GET /api/outages[?min_states=N]                   grouped outages
    GET /api/runtime                                  progress events + crawl stats
"""

from __future__ import annotations

import json
import threading
from datetime import datetime, timezone
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.analysis.reporting import render_timeline
from repro.collection.scheduler import CrawlReport
from repro.core.pipeline import StudyResult
from repro.core.progress import ProgressLog
from repro.errors import ReproError
from repro.timeutil import TimeWindow, ensure_grid
from repro.trends.faults import FaultReport


class SiftWebApp:
    """Routes paths to JSON/HTML payloads over a finished study.

    ``progress_log``, ``crawl_report`` and ``fault_report`` are
    optional runtime telemetry — when the app is served from a
    :class:`StudyRuntime` the ``/api/runtime`` endpoint exposes how the
    study ran (structured progress events, resumed geographies, crawl
    throughput, chaos accounting).
    """

    def __init__(
        self,
        study: StudyResult,
        progress_log: ProgressLog | None = None,
        crawl_report: CrawlReport | None = None,
        fault_report: FaultReport | None = None,
    ) -> None:
        self.study = study
        self.progress_log = progress_log
        self.crawl_report = crawl_report
        self.fault_report = fault_report

    # -- routing -------------------------------------------------------------

    def handle_path(self, path: str) -> tuple[int, str, str]:
        """(status, content type, body) for a request path."""
        parsed = urlparse(path)
        params = {key: values[0] for key, values in parse_qs(parsed.query).items()}
        try:
            if parsed.path == "/":
                return 200, "text/html; charset=utf-8", self._index(params)
            if parsed.path == "/api/geos":
                return self._json(sorted(self.study.states))
            if parsed.path == "/api/timeline":
                return self._json(self._timeline(params))
            if parsed.path == "/api/spikes":
                return self._json(self._spikes(params))
            if parsed.path == "/api/outages":
                return self._json(self._outages(params))
            if parsed.path == "/api/runtime":
                return self._json(self._runtime(params))
        except (KeyError, ValueError, ReproError) as error:
            return self._error(400, str(error))
        return self._error(404, f"unknown path: {parsed.path}")

    @staticmethod
    def _json(payload: object, status: int = 200) -> tuple[int, str, str]:
        return status, "application/json", json.dumps(payload, indent=1)

    @classmethod
    def _error(cls, status: int, message: str) -> tuple[int, str, str]:
        return cls._json({"error": message}, status=status)

    # -- endpoints -------------------------------------------------------------

    def _state_result(self, params: dict[str, str]):
        geo = params.get("geo")
        if not geo:
            raise ValueError("missing required parameter: geo")
        result = self.study.states.get(geo)
        if result is None:
            raise ValueError(f"geography not in study: {geo}")
        return result

    def _window(self, params: dict[str, str], default: TimeWindow) -> TimeWindow:
        start = params.get("start")
        end = params.get("end")
        if start is None and end is None:
            return default
        parse = lambda iso, fallback: (  # noqa: E731 - tiny local helper
            ensure_grid(datetime.fromisoformat(iso).replace(tzinfo=timezone.utc))
            if iso
            else fallback
        )
        return TimeWindow(parse(start, default.start), parse(end, default.end))

    def _timeline(self, params: dict[str, str]) -> dict:
        result = self._state_result(params)
        window = self._window(params, result.timeline.window)
        sliced = result.timeline.slice(window)
        return {
            "geo": result.geo,
            "term": sliced.term,
            "start": sliced.start.isoformat(),
            "hours": len(sliced),
            "values": [round(float(v), 3) for v in sliced.values],
        }

    def _spikes(self, params: dict[str, str]) -> dict:
        result = self._state_result(params)
        min_hours = int(params.get("min_hours", 1))
        spikes = [
            spike.to_dict()
            for spike in self.study.spikes.in_state(result.geo)
            if spike.duration_hours >= min_hours
        ]
        return {"geo": result.geo, "count": len(spikes), "spikes": spikes}

    def _outages(self, params: dict[str, str]) -> dict:
        min_states = int(params.get("min_states", 1))
        outages = [
            {
                "label": outage.label,
                "states": sorted(outage.states),
                "footprint": outage.footprint,
                "max_duration_hours": outage.max_duration_hours,
                "annotations": list(outage.annotations[:3]),
            }
            for outage in self.study.outages
            if outage.footprint >= min_states
        ]
        return {"count": len(outages), "outages": outages}

    def _runtime(self, params: dict[str, str]) -> dict:
        kind = params.get("type")
        events = []
        if self.progress_log is not None:
            events = [
                event.to_dict()
                for event in self.progress_log.events()
                if kind is None or type(event).__name__ == kind
            ]
        crawl = None
        if self.crawl_report is not None:
            report = self.crawl_report
            crawl = {
                "requested": report.requested,
                "fetched": report.fetched,
                "served_from_cache": report.served_from_cache,
                "retries": report.retries,
                "elapsed_seconds": round(report.elapsed_seconds, 3),
                "frames_per_second": round(report.frames_per_second, 1),
                "per_fetcher": dict(report.per_fetcher),
                "dead_lettered": report.dead_lettered,
            }
        faults = (
            self.fault_report.to_dict() if self.fault_report is not None else None
        )
        return {
            "resumed_geos": list(self.study.resumed_geos),
            "event_count": len(events),
            "events": events,
            "crawl": crawl,
            "faults": faults,
        }

    def _index(self, params: dict[str, str]) -> str:
        geo = params.get("geo") or next(iter(sorted(self.study.states)), "")
        rows = [
            "<!doctype html><html><head><title>SIFT</title></head><body>",
            "<h1>SIFT &mdash; user-affecting Internet outages</h1>",
            f"<p>{self.study.spike_count} spikes, {len(self.study.outages)} "
            f"outages across {len(self.study.states)} geographies.</p>",
        ]
        result = self.study.states.get(geo)
        if result is not None:
            sketch = render_timeline(result.timeline.values, title="")
            rows.append(f"<h2>{geo} timeline</h2><pre>{sketch}</pre>")
            top = self.study.spikes.in_state(geo).top_by_duration(5)
            rows.append("<h2>Top spikes</h2><ul>")
            rows.extend(
                f"<li>{spike.label} &mdash; {spike.duration_hours} h "
                f"&mdash; {', '.join(spike.annotations) or 'unannotated'}</li>"
                for spike in top
            )
            rows.append("</ul>")
        rows.append("</body></html>")
        return "".join(rows)


class _Handler(BaseHTTPRequestHandler):
    app: SiftWebApp  # injected by serve()

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        status, content_type, body = self.app.handle_path(self.path)
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        pass  # keep pytest output clean


def serve(
    study: StudyResult,
    host: str = "127.0.0.1",
    port: int = 0,
    progress_log: ProgressLog | None = None,
    crawl_report: CrawlReport | None = None,
    fault_report: FaultReport | None = None,
) -> tuple[ThreadingHTTPServer, threading.Thread]:
    """Serve a study over HTTP; returns (server, daemon thread).

    ``port=0`` picks a free port (see ``server.server_address``).  Call
    ``server.shutdown()`` to stop.
    """
    app = SiftWebApp(
        study,
        progress_log=progress_log,
        crawl_report=crawl_report,
        fault_report=fault_report,
    )
    handler = type("BoundHandler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
