"""A high-throughput web interface over SIFT results (paper §4).

The paper's system includes "a running web interface to display the
requested data to the SIFT user"; this is a dependency-free equivalent
on ``http.server``, built to serve read-mostly snapshots fast:

* all payloads come from a columnar :class:`~repro.web.index.QueryIndex`
  built once per study snapshot (see that module for the layout);
* responses are cached as fully **encoded bytes** in an LRU keyed by
  canonicalized queries — equivalent filters share one entry;
* every snapshot carries a monotonically increasing version that yields
  strong ETags, so conditional requests (``If-None-Match``) revalidate
  with a 304 and zero body bytes;
* clients sending ``Accept-Encoding: gzip`` get a gzip representation,
  compressed once per cached entry;
* JSON is compact by default; ``?pretty=1`` opts into indentation.

The request routing is a pure function (:meth:`SiftWebApp.handle_request`
and the legacy tuple form :meth:`SiftWebApp.handle_path`), so tests and
benchmarks exercise every endpoint without sockets; :func:`serve` binds
the same app to a real ``ThreadingHTTPServer``.

Endpoints::

    GET /                      HTML overview with a timeline sketch
    GET /api/geos              known geographies
    GET /api/summary           study-wide headline stats
    GET /api/timeline?geo=US-TX[&start=ISO&end=ISO]   series + aggregates
    GET /api/spikes?geo=US-TX[&min_hours=N]           detected spikes
    GET /api/outages[?min_states=N]                   grouped outages
    GET /api/runtime                                  telemetry (uncached)
    GET /api/stream[?since=SEQ&timeout=S]             long-poll event feed
    GET /healthz                                      liveness + health state
    GET /readyz                                       readiness (503 halted)

All JSON endpoints accept ``pretty=1``.  Duplicated query parameters
and unknown parameters are rejected with a 400 (silent drops would
poison the cache keyspace).

Degraded-mode serving: when a ``health_source`` (the supervisor's
``health_payload``) is wired in, ``/healthz`` and ``/readyz`` report
its state, ``/api/runtime`` carries an explicit ``staleness`` field,
and the app keeps answering every read from the last installed
snapshot while the daemon restarts — stale-while-degraded, never
down.  ``max_inflight`` bounds concurrent admission: excess requests
are shed with ``503 Retry-After`` (the only deliberate 5xx) instead
of queueing without bound.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
import threading
import time
from collections import OrderedDict, deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.analysis.reporting import render_timeline
from repro.collection.scheduler import CrawlReport
from repro.core.pipeline import StudyResult
from repro.core.progress import (
    DeltaInstalled,
    ProgressEvent,
    ProgressListener,
    ProgressLog,
    ServingStats,
    ShardStats,
    SnapshotInstalled,
    SpikePublished,
)
from repro.errors import ReproError
from repro.timeutil import TimeWindow, hour_at
from repro.trends.faults import FaultReport
from repro.web.index import QueryIndex, parse_window_param

_COMPACT_SEPARATORS = (",", ":")
_JSON_TYPE = "application/json"
_HTML_TYPE = "text/html; charset=utf-8"
#: Snapshots change only when a new study installs, so clients may cache
#: briefly but must revalidate (the ETag makes revalidation one RTT).
_CACHE_CONTROL = "public, max-age=60, must-revalidate"
_NO_STORE = "no-store"
#: Bodies below this size are served identity-encoded even to gzip
#: clients: the header overhead outweighs the savings.
_MIN_GZIP_BYTES = 256

#: Route table: path -> (planner method name, allowed query parameters).
_ROUTES: dict[str, tuple[str, frozenset[str]]] = {
    "/": ("_plan_index", frozenset({"geo"})),
    "/api/geos": ("_plan_geos", frozenset({"pretty"})),
    "/api/summary": ("_plan_summary", frozenset({"pretty"})),
    "/api/timeline": (
        "_plan_timeline",
        frozenset({"geo", "start", "end", "pretty"}),
    ),
    "/api/spikes": ("_plan_spikes", frozenset({"geo", "min_hours", "pretty"})),
    "/api/outages": ("_plan_outages", frozenset({"min_states", "pretty"})),
    "/api/runtime": ("_plan_runtime", frozenset({"type", "pretty"})),
    "/api/stream": ("_plan_stream", frozenset({"since", "timeout", "pretty"})),
    "/healthz": ("_plan_healthz", frozenset({"pretty"})),
    "/readyz": ("_plan_readyz", frozenset({"pretty"})),
}

#: Probe endpoints exempt from load shedding: health checks must answer
#: precisely when the server is too busy to answer anything else.
_PROBE_PATHS = frozenset({"/healthz", "/readyz"})


def _encode_json(payload: object, pretty: bool) -> bytes:
    if pretty:
        return json.dumps(payload, indent=1).encode("utf-8")
    return json.dumps(payload, separators=_COMPACT_SEPARATORS).encode("utf-8")


def _truthy(value: str | None) -> bool:
    return value is not None and value.lower() not in ("", "0", "false", "no", "off")


def _etag_matches(header: str | None, etag: str) -> bool:
    if not header:
        return False
    if header.strip() == "*":
        return True
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


@dataclasses.dataclass(frozen=True, slots=True)
class WebResponse:
    """A fully-formed HTTP response: status, header pairs, body bytes."""

    status: int
    headers: tuple[tuple[str, str], ...]
    body: bytes

    def header(self, name: str) -> str | None:
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return None

    @property
    def content_type(self) -> str:
        return self.header("Content-Type") or ""


class _CacheEntry:
    """One cached representation set: identity bytes + lazy gzip."""

    __slots__ = ("body", "etag", "gzip_body", "gzip_etag")

    def __init__(self, body: bytes, etag: str) -> None:
        self.body = body
        self.etag = etag
        self.gzip_body: bytes | None = None
        self.gzip_etag: str | None = None

    def gzipped(self) -> tuple[bytes, str]:
        if self.gzip_body is None:
            # mtime=0 keeps the compressed bytes deterministic.
            self.gzip_body = gzip.compress(self.body, mtime=0)
            self.gzip_etag = f'{self.etag[:-1]}+gzip"'
        return self.gzip_body, self.gzip_etag  # type: ignore[return-value]


class ResponseCache:
    """A capacity-bounded LRU over fully-encoded response bodies."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> _CacheEntry | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, entry: _CacheEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def invalidate(self, predicate) -> int:
        """Drop every entry whose key satisfies *predicate*; returns count.

        The delta-install path uses this to evict only the responses a
        streamed tick actually changed, leaving still-valid encoded
        bodies (and their ETags) in place.
        """
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0


class ServingTelemetry:
    """Request accounting: volumes, savings, handle-time percentiles."""

    def __init__(self, window: int = 4096) -> None:
        self.requests = 0
        self.errors = 0
        self.not_modified = 0
        self.bytes_served = 0
        self.bytes_saved = 0
        #: Requests rejected by bounded admission (deliberate 503s).
        self.shed = 0
        self._seconds: deque[float] = deque(maxlen=window)

    def record(self, seconds: float) -> None:
        self.requests += 1
        self._seconds.append(seconds)

    def percentile_ms(self, percent: float) -> float:
        if not self._seconds:
            return 0.0
        ordered = sorted(self._seconds)
        rank = min(
            len(ordered) - 1, max(0, round(percent / 100 * (len(ordered) - 1)))
        )
        return ordered[rank] * 1000.0


class SiftWebApp:
    """Routes paths to cached, pre-encoded payloads over a study snapshot.

    ``progress_log``, ``crawl_report`` and ``fault_report`` are optional
    runtime telemetry surfaced by ``/api/runtime``.  The serving knobs:

    * ``cache_size`` — LRU entry bound of the response cache;
    * ``caching`` — disable the response cache entirely (payloads still
      come from the :class:`QueryIndex`); responses are byte-identical
      with caching on or off;
    * ``preload`` — pre-encode the hot payloads (geos, summary, default
      outages, per-geo full timelines and spike lists) at snapshot
      install, so even first requests are cache hits;
    * ``progress`` — a structured-event listener receiving
      :class:`SnapshotInstalled` and periodic :class:`ServingStats`;
    * ``health_source`` — a zero-argument callable (the supervisor's
      ``health_payload``) backing ``/healthz``, ``/readyz`` and the
      runtime ``health`` / ``staleness`` fields;
    * ``max_inflight`` — bound on concurrently-admitted requests;
      excess load is shed with ``503 Retry-After`` (``None`` = no
      bound; probe endpoints are always exempt);
    * ``stream_buffer`` — capacity of the ``/api/stream`` event ring.
    """

    def __init__(
        self,
        study: StudyResult,
        progress_log: ProgressLog | None = None,
        crawl_report: CrawlReport | None = None,
        fault_report: FaultReport | None = None,
        execution: dict | None = None,
        *,
        cache_size: int = 512,
        caching: bool = True,
        preload: bool = True,
        progress: ProgressListener | None = None,
        stats_interval: int = 1000,
        health_source=None,
        max_inflight: int | None = None,
        stream_buffer: int = 1024,
    ) -> None:
        self.progress_log = progress_log
        self.crawl_report = crawl_report
        self.fault_report = fault_report
        #: Execution policy of the run that produced the study (executor
        #: kind, worker count, stores) as reported by ``/api/runtime``.
        self.execution = execution
        self._caching = caching
        self._preload = preload
        self._progress = progress
        self._stats_interval = max(1, stats_interval)
        self.health_source = health_source
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be positive: {max_inflight}")
        self._max_inflight = max_inflight
        self._inflight = 0
        self._admission_lock = threading.Lock()
        self._lock = threading.RLock()
        self._cache = ResponseCache(cache_size)
        self._telemetry = ServingTelemetry()
        self._snapshot = 0
        self._preloaded = 0
        #: Stream tick of the installed snapshot (``None`` = a complete
        #: batch study); /api/runtime's staleness field reports it.
        self._installed_tick: int | None = None
        # /api/stream: a sequence-numbered event ring consumed by
        # long-polling dashboards.  Guarded by its own lock so a waiting
        # poll never blocks snapshot installs or cached serving.
        if stream_buffer < 1:
            raise ValueError(f"stream_buffer must be positive: {stream_buffer}")
        self._stream_cond = threading.Condition(threading.Lock())
        self._stream_events: deque[tuple[int, dict]] = deque(maxlen=stream_buffer)
        self._stream_seq = 0
        self.install_study(study)

    # -- snapshot lifecycle ---------------------------------------------------

    def install_study(
        self, study: StudyResult, stream_tick: int | None = None
    ) -> None:
        """Swap in a new study snapshot.

        Rebuilds the :class:`QueryIndex`, bumps the snapshot version
        (which changes every ETag), drops all cached responses, resets
        the serving counters, and re-warms the hot payloads.  A
        supervisor resynchronizing mid-stream passes *stream_tick* (the
        last tick the snapshot covers) so the staleness field stays
        truthful; batch installs leave it ``None`` (complete).
        """
        with self._lock:
            self.study = study
            self.index = QueryIndex(study)
            self._installed_tick = stream_tick
            self._snapshot += 1
            self._cache.clear()
            self._cache.reset_stats()
            self._telemetry = ServingTelemetry()
            self._preloaded = 0
            if self._caching and self._preload:
                self._preloaded = self._warm_hot_paths()
        installed = SnapshotInstalled(
            snapshot=self._snapshot,
            fingerprint=self.index.fingerprint,
            geo_count=len(self.index.geos),
            preloaded=self._preloaded,
        )
        self._emit(installed)
        self.publish_stream_events([installed])

    def install_delta(self, study: StudyResult, delta) -> DeltaInstalled:
        """Install a streamed tick without rebuilding the snapshot.

        *delta* is a :class:`repro.streaming.delta.StudyDelta`.  The
        :class:`QueryIndex` extends its columns in place
        (``apply_delta``), the snapshot version still bumps (new
        responses get new ETags), but instead of dropping the whole
        response cache only the entries the tick touched are evicted:

        * ``timeline`` entries for a changed geography whose window
          reaches past the geography's previous length, or whose column
          had to be rebuilt (scale moved / prefix rewritten) — a window
          entirely inside the untouched prefix stays byte-valid, and
          its ETag still names exactly those bytes;
        * ``spikes`` entries for geographies whose spike set changed;
        * all study-wide entries (summary, outages, index pages) — they
          embed counts and the fingerprint.

        ``SpikePublished`` events for the tick's new spikes plus one
        :class:`DeltaInstalled` land on the ``/api/stream`` feed.
        """
        published = delta.published
        with self._lock:
            self.study = study
            rebuilt = self.index.apply_delta(study, delta)
            self._installed_tick = delta.tick
            self._snapshot += 1
            invalidated = 0
            if self._caching:
                invalidated = self._cache.invalidate(
                    lambda key: self._delta_affects(key[0], delta)
                )
            retained = len(self._cache)
            installed = DeltaInstalled(
                snapshot=self._snapshot,
                fingerprint=self.index.fingerprint,
                tick=delta.tick,
                appended_hours=delta.appended_hours,
                rebuilt_columns=rebuilt,
                invalidated=invalidated,
                retained=retained,
                published=len(published),
            )
        events: list[ProgressEvent] = [
            SpikePublished(
                geo=spike.geo,
                tick=delta.tick,
                start=spike.start.isoformat(),
                peak=spike.peak.isoformat(),
                end=spike.end.isoformat(),
                magnitude=spike.magnitude,
                duration_hours=spike.duration_hours,
            )
            for spike in published
        ]
        events.append(installed)
        self._emit(installed)
        self.publish_stream_events(events)
        return installed

    @staticmethod
    def _delta_affects(plan_key: tuple, delta) -> bool:
        """Does a cached plan's payload depend on what the tick changed?"""
        kind = plan_key[0]
        if kind == "timeline":
            _, geo, lo, hi = plan_key
            geo_delta = delta.geos.get(geo)
            if geo_delta is None:
                return False
            return not geo_delta.appendable or hi > geo_delta.old_hours
        if kind == "spikes":
            _, geo, _cut = plan_key
            geo_delta = delta.geos.get(geo)
            return geo_delta is not None and geo_delta.spikes_changed
        # Study-wide payloads (summary, outages, geos, index HTML) embed
        # counts or the fingerprint; anything unrecognized evicts too.
        return True

    @property
    def snapshot_version(self) -> int:
        return self._snapshot

    @property
    def cache(self) -> ResponseCache:
        return self._cache

    def _warm_hot_paths(self) -> int:
        """Pre-encode the read-mostly payloads into the cache."""
        plans = [
            self._plan_index({}),
            self._plan_geos({}),
            self._plan_summary({}),
            self._plan_outages({}),
        ]
        for geo in self.index.geos:
            plans.append(self._plan_timeline({"geo": geo}))
            plans.append(self._plan_spikes({"geo": geo}))
        for key, build, content_type in plans:
            body = self._render(build, content_type, pretty=False)
            self._cache.put((key, False), _CacheEntry(body, self._make_etag(body)))
        return len(plans)

    # -- request handling -----------------------------------------------------

    def handle_request(
        self,
        path: str,
        headers: dict[str, str] | None = None,
        method: str = "GET",
    ) -> WebResponse:
        """Serve one request; ``headers`` may carry the conditional and
        content-negotiation request headers (``If-None-Match``,
        ``Accept-Encoding``).

        Bounded admission happens here, before any work: with
        ``max_inflight`` set, a request arriving while that many others
        are in flight is shed with a ``503 Retry-After`` — a deliberate,
        bounded answer instead of an unbounded queue.  Probe endpoints
        are never shed.
        """
        started = time.perf_counter()
        counted = False
        if (
            self._max_inflight is not None
            and urlparse(path).path not in _PROBE_PATHS
        ):
            shed = False
            with self._admission_lock:
                if self._inflight >= self._max_inflight:
                    shed = True
                else:
                    self._inflight += 1
                    counted = True
            if shed:
                return self._shed_response()
        try:
            response = self._dispatch(path, headers or {})
        finally:
            if counted:
                with self._admission_lock:
                    self._inflight -= 1
        with self._lock:
            self._telemetry.record(time.perf_counter() - started)
            requests = self._telemetry.requests
        if requests % self._stats_interval == 0:
            self._emit(self.serving_stats())
        return response

    def _shed_response(self) -> WebResponse:
        with self._lock:
            self._telemetry.shed += 1
        body = _encode_json(
            {"error": "server at capacity; retry shortly"}, pretty=False
        )
        return WebResponse(
            503,
            (
                ("Content-Type", _JSON_TYPE),
                ("Content-Length", str(len(body))),
                ("Retry-After", "1"),
                ("Cache-Control", _NO_STORE),
            ),
            body,
        )

    def handle_path(self, path: str) -> tuple[int, str, str]:
        """Legacy tuple form: (status, content type, body text)."""
        response = self.handle_request(path)
        return response.status, response.content_type, response.body.decode("utf-8")

    def _dispatch(self, path: str, request_headers: dict[str, str]) -> WebResponse:
        parsed = urlparse(path)
        route = _ROUTES.get(parsed.path)
        if route is None:
            return self._error_response(404, f"unknown path: {parsed.path}")
        planner_name, allowed = route
        query = parse_qs(parsed.query, keep_blank_values=True)
        duplicated = sorted(name for name, values in query.items() if len(values) > 1)
        if duplicated:
            return self._error_response(
                400, f"duplicated query parameter(s): {', '.join(duplicated)}"
            )
        params = {name: values[0] for name, values in query.items()}
        unknown = sorted(set(params) - allowed)
        if unknown:
            return self._error_response(
                400, f"unknown query parameter(s): {', '.join(unknown)}"
            )
        pretty = _truthy(params.get("pretty"))
        try:
            if planner_name == "_plan_runtime":
                body = _encode_json(self._runtime(params), pretty)
                return WebResponse(
                    200,
                    (
                        ("Content-Type", _JSON_TYPE),
                        ("Content-Length", str(len(body))),
                        ("Cache-Control", _NO_STORE),
                    ),
                    body,
                )
            if planner_name == "_plan_stream":
                body = _encode_json(self._stream_payload(params), pretty)
                return WebResponse(
                    200,
                    (
                        ("Content-Type", _JSON_TYPE),
                        ("Content-Length", str(len(body))),
                        ("Cache-Control", _NO_STORE),
                    ),
                    body,
                )
            if planner_name in ("_plan_healthz", "_plan_readyz"):
                status, payload = getattr(self, planner_name)()
                body = _encode_json(payload, pretty)
                return WebResponse(
                    status,
                    (
                        ("Content-Type", _JSON_TYPE),
                        ("Content-Length", str(len(body))),
                        ("Cache-Control", _NO_STORE),
                    ),
                    body,
                )
            key, build, content_type = getattr(self, planner_name)(params)
        except (KeyError, ValueError, ReproError) as error:
            return self._error_response(400, str(error))
        return self._serve_cacheable(
            (key, pretty), build, content_type, pretty, request_headers
        )

    def _serve_cacheable(
        self,
        key: tuple,
        build,
        content_type: str,
        pretty: bool,
        request_headers: dict[str, str],
    ) -> WebResponse:
        accepts_gzip = "gzip" in (
            request_headers.get("Accept-Encoding") or ""
        ).lower()
        with self._lock:
            entry = self._cache.get(key) if self._caching else None
            if entry is None:
                body = self._render(build, content_type, pretty)
                entry = _CacheEntry(body, self._make_etag(body))
                if self._caching:
                    self._cache.put(key, entry)
                hit = False
            else:
                hit = True
                # Encoded bytes we did not have to rebuild.
                self._telemetry.bytes_saved += len(entry.body)
            body, etag = entry.body, entry.etag
            content_encoding = None
            if accepts_gzip and len(entry.body) >= _MIN_GZIP_BYTES:
                body, etag = entry.gzipped()
                content_encoding = "gzip"
            if _etag_matches(request_headers.get("If-None-Match"), etag):
                self._telemetry.not_modified += 1
                # Body bytes the 304 kept off the wire.
                self._telemetry.bytes_saved += len(body)
                return WebResponse(
                    304,
                    (
                        ("ETag", etag),
                        ("Cache-Control", _CACHE_CONTROL),
                        ("Vary", "Accept-Encoding"),
                    ),
                    b"",
                )
            self._telemetry.bytes_served += len(body)
        headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(body))),
            ("ETag", etag),
            ("Cache-Control", _CACHE_CONTROL),
            ("Vary", "Accept-Encoding"),
            ("X-Cache", "hit" if hit else "miss"),
        ]
        if content_encoding:
            headers.append(("Content-Encoding", content_encoding))
        return WebResponse(200, tuple(headers), body)

    def _render(self, build, content_type: str, pretty: bool) -> bytes:
        payload = build()
        if content_type == _HTML_TYPE:
            return payload.encode("utf-8")
        return _encode_json(payload, pretty)

    def _make_etag(self, body: bytes) -> str:
        digest = hashlib.sha256(body).hexdigest()[:16]
        return f'"s{self._snapshot}-{self.index.fingerprint[:8]}-{digest}"'

    def _error_response(self, status: int, message: str) -> WebResponse:
        body = _encode_json({"error": message}, pretty=False)
        with self._lock:
            self._telemetry.errors += 1
        return WebResponse(
            status,
            (
                ("Content-Type", _JSON_TYPE),
                ("Content-Length", str(len(body))),
                ("Cache-Control", _NO_STORE),
            ),
            body,
        )

    # -- route planners -------------------------------------------------------
    # Each returns (canonical cache key, payload builder, content type);
    # the key never contains raw parameter spellings, only resolved
    # values, so equivalent queries collapse into one cache entry.

    def _require_geo(self, params: dict[str, str]) -> str:
        geo = params.get("geo")
        if not geo:
            raise ValueError("missing required parameter: geo")
        return geo

    def _plan_index(self, params: dict[str, str]):
        geo = params.get("geo") or (self.index.geos[0] if self.index.geos else "")
        return ("index", geo), (lambda: self._index_html(geo)), _HTML_TYPE

    def _plan_geos(self, params: dict[str, str]):
        return ("geos",), (lambda: list(self.index.geos)), _JSON_TYPE

    def _plan_summary(self, params: dict[str, str]):
        return ("summary",), self.index.summary_payload, _JSON_TYPE

    def _plan_timeline(self, params: dict[str, str]):
        geo = self._require_geo(params)
        column = self.index.column(geo)
        start, end = params.get("start"), params.get("end")
        if start is None and end is None:
            lo, hi = 0, column.hours
        else:
            window = TimeWindow(
                parse_window_param(start) if start else column.start,
                parse_window_param(end)
                if end
                else hour_at(column.start, column.hours),
            )
            lo, hi = column.locate(window)
        return (
            ("timeline", geo, lo, hi),
            (lambda: self.index.timeline_payload(geo, lo, hi)),
            _JSON_TYPE,
        )

    def _plan_spikes(self, params: dict[str, str]):
        geo = self._require_geo(params)
        table = self.index.spike_table(geo)
        cut = table.cut(int(params.get("min_hours", 1)))
        return (
            ("spikes", geo, cut),
            (lambda: self.index.spikes_payload(geo, cut)),
            _JSON_TYPE,
        )

    def _plan_outages(self, params: dict[str, str]):
        cut = self.index.outages.cut(int(params.get("min_states", 1)))
        return (
            ("outages", cut),
            (lambda: self.index.outages_payload(cut)),
            _JSON_TYPE,
        )

    def _plan_runtime(self, params: dict[str, str]):  # pragma: no cover
        raise AssertionError("runtime responses are served uncached")

    def _plan_stream(self, params: dict[str, str]):  # pragma: no cover
        raise AssertionError("stream responses are served uncached")

    # -- health probes --------------------------------------------------------

    def _health(self) -> dict | None:
        """The supervisor's health payload, or ``None`` unsupervised."""
        if self.health_source is None:
            return None
        return self.health_source()

    def _staleness(self) -> dict:
        """How far behind the stream head the served snapshot may be."""
        health = self._health()
        with self._lock:
            tick = self._installed_tick
            snapshot = self._snapshot
        stale = health is not None and health.get("state") != "healthy"
        payload: dict = {
            "snapshot": snapshot,
            "installed_tick": tick,
            #: True while the daemon is degraded/halted: reads keep
            #: answering from this snapshot, which may trail the stream.
            "serving_stale": stale,
        }
        if health is not None and tick is not None:
            done = health.get("ticks_done")
            if done is not None:
                payload["ticks_behind"] = max(0, int(done) - (tick + 1))
        return payload

    def _plan_healthz(self) -> tuple[int, dict]:
        """Liveness: answering at all means the serving process lives.

        Always 200 — a halted daemon still leaves reads up (that is the
        whole point of stale-while-degraded); the body carries the
        supervisor state for anything that wants to alert on it.
        """
        health = self._health()
        return 200, {
            "status": "ok",
            "health": health,
            "staleness": self._staleness(),
        }

    def _plan_readyz(self) -> tuple[int, dict]:
        """Readiness: should a load balancer route new traffic here?

        Ready while healthy or degraded (stale reads are served
        deliberately); 503 once the supervisor halts — the snapshot
        will never advance again, so traffic should fail over.
        """
        health = self._health()
        halted = health is not None and health.get("state") == "halted"
        return (503 if halted else 200), {
            "status": "halted" if halted else "ok",
            "health": health,
            "staleness": self._staleness(),
        }

    # -- the event stream -----------------------------------------------------

    def publish_stream_events(self, events) -> None:
        """Append progress events to the ``/api/stream`` feed."""
        with self._stream_cond:
            for event in events:
                self._stream_seq += 1
                self._stream_events.append((self._stream_seq, event.to_dict()))
            self._stream_cond.notify_all()

    def _stream_payload(self, params: dict[str, str]) -> dict:
        """Long-poll over the event ring.

        ``since=SEQ`` returns only events newer than *SEQ*;
        ``timeout=SECONDS`` (capped at 30) blocks until something newer
        arrives or the timeout lapses.  Each event carries its ``seq``,
        so a dashboard loops ``since=<last next_since>``.  The ring is
        bounded: a client further behind than its capacity misses the
        overwritten events (``oldest_seq`` reveals the gap).
        """
        since = int(params.get("since", 0))
        timeout = min(max(float(params.get("timeout", 0.0)), 0.0), 30.0)
        deadline = time.monotonic() + timeout
        with self._stream_cond:
            while self._stream_seq <= since:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._stream_cond.wait(remaining)
            events = [
                {"seq": seq, **payload}
                for seq, payload in self._stream_events
                if seq > since
            ]
            oldest = self._stream_events[0][0] if self._stream_events else 0
            # The client asked to resume from a cursor older than the
            # ring's tail: events in (since, oldest) were overwritten.
            gap = since > 0 and oldest > since + 1
            return {
                "since": since,
                "next_since": self._stream_seq,
                "oldest_seq": oldest,
                "gap": gap,
                "events": events,
            }

    # -- dynamic payloads -----------------------------------------------------

    def serving_stats(self) -> ServingStats:
        """Current serving telemetry as a structured progress event."""
        with self._lock:
            telemetry, cache = self._telemetry, self._cache
            return ServingStats(
                snapshot=self._snapshot,
                fingerprint=self.index.fingerprint,
                requests=telemetry.requests,
                hits=cache.hits,
                misses=cache.misses,
                not_modified=telemetry.not_modified,
                errors=telemetry.errors,
                evictions=cache.evictions,
                entries=len(cache),
                capacity=cache.capacity,
                preloaded=self._preloaded,
                bytes_served=telemetry.bytes_served,
                bytes_saved=telemetry.bytes_saved,
                shed=telemetry.shed,
                p50_handle_ms=round(telemetry.percentile_ms(50), 4),
                p99_handle_ms=round(telemetry.percentile_ms(99), 4),
            )

    def _runtime(self, params: dict[str, str]) -> dict:
        kind = params.get("type")
        events = []
        if self.progress_log is not None:
            events = [
                event.to_dict()
                for event in self.progress_log.events()
                if kind is None or type(event).__name__ == kind
            ]
        crawl = None
        if self.crawl_report is not None:
            report = self.crawl_report
            crawl = {
                "requested": report.requested,
                "fetched": report.fetched,
                "served_from_cache": report.served_from_cache,
                "retries": report.retries,
                "elapsed_seconds": round(report.elapsed_seconds, 3),
                "frames_per_second": round(report.frames_per_second, 1),
                "per_fetcher": dict(report.per_fetcher),
                "dead_lettered": report.dead_lettered,
            }
        faults = (
            self.fault_report.to_dict() if self.fault_report is not None else None
        )
        return {
            "resumed_geos": list(self.study.resumed_geos),
            "event_count": len(events),
            "events": events,
            "crawl": crawl,
            "faults": faults,
            "reconstruction": self._reconstruction(),
            "execution": self._execution(),
            "serving": self.serving_stats().to_dict(),
            "health": self._health(),
            "staleness": self._staleness(),
        }

    def _execution(self) -> dict | None:
        """Execution policy plus per-shard wall-clock / peak-RSS rows.

        The shard rows come from the :class:`ShardStats` events every
        executor emits (worker processes forward theirs through the
        shard queue), so even a serial run reports its memory profile.
        """
        shards = []
        if self.progress_log is not None:
            shards = [
                event.to_dict()
                for event in self.progress_log.of_type(ShardStats)
            ]
        if self.execution is None and not shards:
            return None
        payload = dict(self.execution) if self.execution is not None else {}
        payload["shards"] = shards
        return payload

    def _reconstruction(self) -> dict:
        """Active reconstruction backend plus per-geo stitch diagnostics.

        The backend names ride on every :class:`AveragingResult` (and
        survive checkpoint resume), so the payload reflects what built
        the snapshot, not what the server happens to be configured with.
        """
        stitcher = averager = None
        per_geo = {}
        for geo in sorted(self.study.states):
            averaging = self.study.states[geo].averaging
            stitcher, averager = averaging.stitcher, averaging.averager
            report = averaging.stitch_report
            per_geo[geo] = {
                "frames": report.frames,
                "carried_ratios": report.carried_ratios,
                "carried_positions": list(report.carried_positions),
                "ratio_spread": round(report.ratio_spread, 4),
            }
        return {"stitcher": stitcher, "averager": averager, "per_geo": per_geo}

    def _index_html(self, geo: str) -> str:
        rows = [
            "<!doctype html><html><head><title>SIFT</title></head><body>",
            "<h1>SIFT &mdash; user-affecting Internet outages</h1>",
            f"<p>{self.study.spike_count} spikes, {len(self.study.outages)} "
            f"outages across {len(self.study.states)} geographies.</p>",
        ]
        result = self.study.states.get(geo)
        if result is not None:
            sketch = render_timeline(result.timeline.values, title="")
            rows.append(f"<h2>{geo} timeline</h2><pre>{sketch}</pre>")
            top = self.study.spikes.in_state(geo).top_by_duration(5)
            rows.append("<h2>Top spikes</h2><ul>")
            rows.extend(
                f"<li>{spike.label} &mdash; {spike.duration_hours} h "
                f"&mdash; {', '.join(spike.annotations) or 'unannotated'}</li>"
                for spike in top
            )
            rows.append("</ul>")
        rows.append("</body></html>")
        return "".join(rows)

    # -- progress -------------------------------------------------------------

    def _emit(self, event) -> None:
        if self._progress is not None:
            self._progress(event)


class _Handler(BaseHTTPRequestHandler):
    app: SiftWebApp  # injected by serve()

    #: Keep-alive: every non-304 response carries Content-Length.
    protocol_version = "HTTP/1.1"

    #: TCP_NODELAY: headers and body go out as separate writes, and
    #: with Nagle enabled the second write stalls behind the client's
    #: delayed ACK (~40ms per keep-alive request).
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._respond(include_body=True)

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        self._respond(include_body=False)

    def _respond(self, include_body: bool) -> None:
        response = self.app.handle_request(
            self.path,
            headers={
                "If-None-Match": self.headers.get("If-None-Match", ""),
                "Accept-Encoding": self.headers.get("Accept-Encoding", ""),
            },
        )
        self.send_response(response.status)
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        # 304 carries no body by definition; HEAD sends headers only.
        if include_body and response.status != 304 and response.body:
            self.wfile.write(response.body)

    def log_message(self, format: str, *args: object) -> None:
        pass  # keep pytest output clean


def serve(
    study: StudyResult,
    host: str = "127.0.0.1",
    port: int = 0,
    progress_log: ProgressLog | None = None,
    crawl_report: CrawlReport | None = None,
    fault_report: FaultReport | None = None,
    execution: dict | None = None,
    *,
    cache_size: int = 512,
    caching: bool = True,
    preload: bool = True,
    progress: ProgressListener | None = None,
    health_source=None,
    max_inflight: int | None = None,
    stream_buffer: int = 1024,
) -> tuple[ThreadingHTTPServer, threading.Thread]:
    """Serve a study over HTTP; returns (server, daemon thread).

    ``port=0`` picks a free port (see ``server.server_address``).  Call
    ``server.shutdown()`` to stop.  The bound :class:`SiftWebApp` is
    available as ``server.app``.
    """
    app = SiftWebApp(
        study,
        progress_log=progress_log,
        crawl_report=crawl_report,
        fault_report=fault_report,
        execution=execution,
        cache_size=cache_size,
        caching=caching,
        preload=preload,
        progress=progress,
        health_source=health_source,
        max_inflight=max_inflight,
        stream_buffer=stream_buffer,
    )
    return serve_app(app, host=host, port=port)


def serve_app(
    app: SiftWebApp, host: str = "127.0.0.1", port: int = 0
) -> tuple[ThreadingHTTPServer, threading.Thread]:
    """Bind an already-built app (e.g. one a stream daemon installs
    deltas into) to a real HTTP server; returns (server, daemon thread).
    """
    handler = type("BoundHandler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    server.app = app  # type: ignore[attr-defined]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
