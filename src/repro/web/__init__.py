"""Web interface for browsing SIFT results (read-optimized serving)."""

from repro.web.app import ResponseCache, SiftWebApp, WebResponse, serve, serve_app
from repro.web.index import QueryIndex

__all__ = [
    "QueryIndex",
    "ResponseCache",
    "SiftWebApp",
    "WebResponse",
    "serve",
    "serve_app",
]
