"""Web interface for browsing SIFT results."""

from repro.web.app import SiftWebApp, serve

__all__ = ["SiftWebApp", "serve"]
