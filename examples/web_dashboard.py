#!/usr/bin/env python3
"""Serve SIFT results through the web interface.

Runs a small study and exposes it over HTTP, like the "running web
interface" of the paper's implementation.  Endpoints:

    /                       HTML overview with a timeline sketch
    /api/geos               geographies in the study
    /api/timeline?geo=US-TX the reconstructed series
    /api/spikes?geo=US-TX   detected spikes (JSON)
    /api/outages            grouped multi-state outages
    /api/runtime            progress events + crawl statistics

Run:  python examples/web_dashboard.py [port]
"""

import sys

from repro import StudyRuntime, utc
from repro.runtime import ProgressLog
from repro.web import serve


def main() -> None:
    port = int(sys.argv[1]) if len(sys.argv) > 1 else 8080
    log = ProgressLog()
    runtime = StudyRuntime.build(
        background_scale=0.3,
        start=utc(2021, 1, 1),
        end=utc(2021, 3, 1),
        max_workers=2,
        progress=log,
    )
    print("running the study (TX, CA, OK, LA) ...")
    study = runtime.run_study(geos=("US-TX", "US-CA", "US-OK", "US-LA"))
    server, _thread = serve(
        study, port=port, progress_log=log, crawl_report=runtime.report()
    )
    host, bound_port = server.server_address[:2]
    print(f"SIFT dashboard: http://{host}:{bound_port}/?geo=US-TX  (Ctrl-C stops)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.shutdown()


if __name__ == "__main__":
    main()
