#!/usr/bin/env python3
"""Serve SIFT results through the web interface.

Runs a small study and exposes it over HTTP, like the "running web
interface" of the paper's implementation.  Endpoints:

    /                       HTML overview with a timeline sketch
    /api/geos               geographies in the study
    /api/summary            headline numbers + content fingerprint
    /api/timeline?geo=US-TX the reconstructed series (start=/end= window)
    /api/spikes?geo=US-TX   detected spikes (min_hours= filter)
    /api/outages            grouped multi-state outages (min_states=)
    /api/runtime            progress events + crawl/serving statistics

Responses are compact JSON (`?pretty=1` opts into indentation), carry
strong ETags for `If-None-Match` revalidation, gzip when the client
asks, and come out of an LRU of pre-encoded bytes — `/api/runtime`
shows the live hit rate.  Run:  python examples/web_dashboard.py [port]
"""

import sys

from repro import StudyRuntime, utc
from repro.runtime import ProgressLog


def main() -> None:
    port = int(sys.argv[1]) if len(sys.argv) > 1 else 8080
    log = ProgressLog()
    runtime = StudyRuntime.build(
        background_scale=0.3,
        start=utc(2021, 1, 1),
        end=utc(2021, 3, 1),
        max_workers=2,
        progress=log,
    )
    print("running the study (TX, CA, OK, LA) ...")
    study = runtime.run_study(geos=("US-TX", "US-CA", "US-OK", "US-LA"))
    server, _thread = runtime.serve_web(
        study, port=port, progress_log=log, cache_size=512, progress=log
    )
    host, bound_port = server.server_address[:2]
    print(f"SIFT dashboard: http://{host}:{bound_port}/?geo=US-TX  (Ctrl-C stops)")
    print("try:  curl -sD- -o/dev/null "
          f"http://{host}:{bound_port}/api/timeline?geo=US-TX   # note the ETag")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.shutdown()


if __name__ == "__main__":
    main()
