#!/usr/bin/env python3
"""SIFT vs a complaint-based detector on the same ground truth.

The paper's related work (§5) contrasts SIFT with Downdetector-style
complaint portals.  This example runs both over one simulated month and
prints, for each ground-truth event, what each approach can report —
the complaint portal names the service but has no geography; SIFT
localizes per state and suggests root causes.

Run:  python examples/downdetector_comparison.py
"""

from repro import StudyRuntime, utc
from repro.analysis import render_table
from repro.complaints import ComplaintStream, Downdetector
from repro.timeutil import TimeWindow


def main() -> None:
    env = StudyRuntime.build(
        background_scale=0.3, start=utc(2021, 1, 1), end=utc(2021, 3, 1)
    )
    print("running SIFT (TX, NY, NJ, OK) ...")
    study = env.run_study(geos=("US-TX", "US-NY", "US-NJ", "US-OK"))
    portal = Downdetector(ComplaintStream(env.scenario))

    verizon_window = TimeWindow(utc(2021, 1, 26, 12), utc(2021, 1, 27, 4))
    storm_window = TimeWindow(utc(2021, 2, 15, 8), utc(2021, 2, 17, 12))

    rows = []

    incident = portal.incident_overlapping("Verizon", verizon_window)
    verizon_states = {
        spike.state
        for spike in study.spikes
        if verizon_window.contains(spike.peak)
    }
    rows.append(
        (
            "Verizon outage (26 Jan)",
            f"incident, peak {incident.peak_complaints:.0f} complaints/h"
            if incident
            else "missed",
            f"spikes in {sorted(verizon_states)}",
        )
    )

    storm = study.spikes.in_state("TX").top_by_duration(1)[0]
    spectrum_incident = portal.incident_overlapping("Spectrum", storm_window)
    rows.append(
        (
            "TX winter storm (15 Feb)",
            f"indirect: Spectrum incident={spectrum_incident is not None} "
            "(no <Power outage> page)",
            f"TX spike {storm.duration_hours} h, "
            f"annotations {storm.annotations[:3]}",
        )
    )

    print()
    print(
        render_table(
            ("ground-truth event", "Downdetector view", "SIFT view"),
            rows,
            title="Complaint-based vs search-based detection",
        )
    )
    print()
    print("Complaint incidents attribute a *service* but carry no geography;")
    print("SIFT localizes the same events per state and surfaces causal terms.")


if __name__ == "__main__":
    main()
