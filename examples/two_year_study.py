#!/usr/bin/env python3
"""The paper's two-year, 51-geography study, end to end.

Runs the complete evaluation — every state, the full 2020-2021 window —
and prints the headline numbers next to the paper's.  The background
event scale is configurable: the default (0.1) finishes in about a
minute; 1.0 is the full paper-scale study (expect several minutes and
on the order of 49 000 spikes).

Run:  python examples/two_year_study.py [scale] [workers]
      python examples/two_year_study.py 1.0 4   # paper scale, 4 threads
"""

import sys
import time

from repro import StudyRuntime
from repro.analysis import (
    daily_distribution,
    duration_cdf,
    footprint_cdf,
    most_impactful,
    paper_vs_measured,
    power_share_of_long_spikes,
    render_table,
    state_cdf,
    yearly_counts,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    print(f"building the 2020-2021 world at background scale {scale} "
          f"({workers} workers) ...")
    env = StudyRuntime.build(background_scale=scale, max_workers=workers)

    started = time.time()
    study = env.run_study(geos=None)  # all 51 geographies
    elapsed = time.time() - started

    states = state_cdf(study.spikes)
    durations = duration_cdf(study.spikes)
    footprints = footprint_cdf(study.outages)
    daily = daily_distribution(study.spikes)
    counts = yearly_counts(study.spikes)

    print()
    print(paper_vs_measured(
        [
            ("spikes total", "49 189", study.spike_count),
            ("2020 / 2021 spikes", "25 494 / 23 695", f"{counts[2020]} / {counts[2021]}"),
            ("top-10-state share", "51%", f"{states.share_of_top(10):.0%}"),
            ("spikes >= 3 h", "10%", f"{durations.fraction_at_least(3):.1%}"),
            ("outages >= 10 states", "11%", f"{footprints.fraction_at_least(10):.1%}"),
            ("weekday/weekend ratio", "> 1", f"{daily.weekend_dip:.2f}"),
            ("power share of >= 5 h spikes", "73%", f"{power_share_of_long_spikes(study.spikes):.0%}"),
            ("frames crawled", "160 238", env.service.stats.frames_served),
        ],
        title=f"Two-year study at scale {scale} ({elapsed:.0f}s)",
    ))

    print()
    rows = [
        (row.label, row.state, row.duration_hours, ", ".join(row.spike.annotations[:3]))
        for row in most_impactful(study.spikes, 7)
    ]
    print(render_table(
        ("spike time", "state", "duration (h)", "annotations"),
        rows,
        title="Table 1 - most impactful spikes",
    ))

    print()
    print(
        "note: spike counts scale with the background events; the paper-"
        "scale numbers need scale=1.0 (see EXPERIMENTS.md for a recorded run)."
    )


if __name__ == "__main__":
    main()
