#!/usr/bin/env python3
"""Quickstart: detect user-affecting Internet outages in one state.

Builds a small simulated deployment (ground-truth world + Google Trends
service + crawler), runs the SIFT pipeline for Texas over the first
months of 2021, and prints the spikes it finds — including the
15 Feb 2021 winter-storm outage, the most impactful spike in the paper.

Run:  python examples/quickstart.py
"""

from repro import StudyRuntime, utc
from repro.analysis import render_table, render_timeline
from repro.runtime import text_listener

def main() -> None:
    # A compact world: January-February 2021, moderate background churn.
    # StudyRuntime.build wires world -> Trends service -> crawler -> SIFT;
    # the progress listener streams the structured pipeline events.
    runtime = StudyRuntime.build(
        background_scale=0.3,
        start=utc(2021, 1, 1),
        end=utc(2021, 3, 1),
        progress=text_listener(print),
    )

    print("Crawling weekly frames and reconstructing the Texas timeline...")
    result = runtime.analyze_state("US-TX")
    print(result.timeline.describe())
    print(
        f"averaging used {result.averaging.rounds_used} re-fetch rounds "
        f"(converged={result.averaging.converged})"
    )

    print()
    print(render_timeline(result.timeline.values, title="<Internet outage> in Texas"))

    rows = [
        (spike.label, spike.duration_hours, f"{spike.magnitude:.1f}", spike.magnitude_rank)
        for spike in result.spikes.top_by_duration(5)
    ]
    print()
    print(
        render_table(
            ("spike start", "duration (h)", "magnitude", "rank"),
            rows,
            title="Top spikes by duration",
        )
    )

    storm = result.spikes.top_by_duration(1)[0]
    print()
    print(
        f"The {storm.label} spike is the Texas winter storm: "
        f"{storm.duration_hours} hours of user interest "
        f"(the paper reports 45 hours)."
    )


if __name__ == "__main__":
    main()
