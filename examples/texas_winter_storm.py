#!/usr/bin/env python3
"""Case study: the February 2021 Texas winter storm (paper Fig. 1 / Table 1).

Walks through the full SIFT analysis of the paper's flagship outage:

1. reconstruct the Texas timeline around the storm,
2. detect and rank the spikes (storm vs the 26 Jan Verizon outage),
3. annotate the storm spike with simultaneously-rising search terms,
4. cross-validate against the simulated ANT active-probing data set.

Run:  python examples/texas_winter_storm.py
"""

from repro import StudyRuntime, utc
from repro.analysis import render_table, render_timeline
from repro.ant import AntDataset, CrossValidationConfig, trace_spike
from repro.timeutil import TimeWindow


def main() -> None:
    env = StudyRuntime.build(
        background_scale=0.3, start=utc(2021, 1, 1), end=utc(2021, 3, 1)
    )

    print("=== 1. Reconstruction ===")
    result = env.analyze_state("US-TX")
    figure_window = TimeWindow(utc(2021, 1, 19), utc(2021, 2, 21))
    cut = result.timeline.slice(figure_window)
    print(
        render_timeline(
            cut.values, title="<Internet outage> in Texas, 19 Jan - 21 Feb 2021"
        )
    )

    print()
    print("=== 2. Detection: storm vs Verizon ===")
    storm = result.spikes.top_by_duration(1)[0]
    verizon_candidates = [
        spike
        for spike in result.spikes
        if spike.start.date().isoformat() == "2021-01-26"
    ]
    rows = [("winter storm", storm.label, storm.duration_hours,
             f"{storm.magnitude:.1f}", storm.magnitude_rank)]
    if verizon_candidates:
        verizon = max(verizon_candidates, key=lambda s: s.magnitude)
        rows.append(
            ("Verizon outage", verizon.label, verizon.duration_hours,
             f"{verizon.magnitude:.1f}", verizon.magnitude_rank)
        )
    print(render_table(("event", "start", "duration (h)", "magnitude", "rank"), rows))
    print("(the paper: the storm is more significant on both indicators)")

    print()
    print("=== 3. Context annotation ===")
    rising = env.sift.daily_rising("US-TX", storm.start)
    print(render_table(
        ("rising query", "weight"),
        [(term.phrase, term.weight) for term in rising[:8]],
        title="Rising terms on the storm's start day",
    ))
    annotated = env.sift.run_study(geos=("US-TX",), window=env.window)
    storm_annotated = annotated.spikes.top_by_duration(1)[0]
    print(f"storm annotations: {storm_annotated.annotations}")

    print()
    print("=== 4. Cross-validation against active probing ===")
    ant = AntDataset.build(env.scenario)
    # This two-month scenario is storm-season-dense, so the per-state
    # background of dark blocks is high; a 2x excess is a confirmation.
    trace = trace_spike(ant, storm, CrossValidationConfig(background_ratio=2.0))
    print(
        f"ANT blocks dark in TX during the spike: {trace.blocks_down} "
        f"(background expectation {trace.expected_background:.1f}) "
        f"-> confirmed={trace.confirmed}"
    )
    print("A power outage takes end hosts offline, so active probing sees it —")
    print("unlike the T-Mobile/Akamai/Youtube cases the paper highlights.")


if __name__ == "__main__":
    main()
