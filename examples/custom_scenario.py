#!/usr/bin/env python3
"""Detecting a scripted outage you define yourself.

Shows the library as a *measurement testbed*: you script a ground-truth
outage (here, a fictional ISP failure sweeping the Pacific Northwest),
stand up the simulated Trends service around it, and check whether the
SIFT pipeline recovers the event, its duration, its footprint, and its
context annotations.  This is the workflow for studying the detector's
sensitivity — something the paper could not do against the real Google
Trends, since ground truth there is unobservable.

Run:  python examples/custom_scenario.py
"""

from repro import StudyRuntime, utc
from repro.core.area import group_outages
from repro.analysis import render_table
from repro.world import (
    Cause,
    OutageEvent,
    Scenario,
    ScenarioConfig,
    StateImpact,
)


def build_scenario() -> Scenario:
    """Ground truth: one regional ISP meltdown, nothing else."""
    meltdown = OutageEvent(
        event_id="drill-pnw-isp",
        name="Pacific Northwest ISP meltdown (drill)",
        cause=Cause.ISP,
        impacts=(
            StateImpact("WA", utc(2021, 4, 6, 17), 9, 14.0),
            StateImpact("OR", utc(2021, 4, 6, 17), 7, 10.0),
            StateImpact("ID", utc(2021, 4, 6, 18), 4, 5.0, lag_hours=1),
        ),
        terms=("CenturyLink",),
    )
    config = ScenarioConfig(
        start=utc(2021, 4, 1),
        end=utc(2021, 4, 15),
        background_scale=0.0,  # a clean lab: no background churn
        include_headline_events=False,
    )
    return Scenario(config, (meltdown,))


def main() -> None:
    # Injecting the scripted scenario replaces the default 2020-2021
    # world; the runtime wires the Trends service, fleet, and pipeline
    # around it (the study window defaults to the scenario's).
    runtime = StudyRuntime.build(
        scenario=build_scenario(),
        fetcher_count=2,
        burst=200,
        requests_per_second=20,
    )

    study = runtime.run_study(geos=("US-WA", "US-OR", "US-ID", "US-MT"))

    rows = [
        (spike.state, spike.label, spike.duration_hours, spike.annotations)
        for spike in study.spikes
        if spike.magnitude > 5
    ]
    print(render_table(
        ("state", "spike start", "duration (h)", "annotations"),
        rows,
        title="Detected spikes (drill scenario)",
    ))

    outages = [o for o in group_outages(study.spikes) if o.footprint >= 2]
    for outage in outages:
        print(
            f"\nmulti-state outage at {outage.label}: "
            f"{sorted(outage.states)} ({outage.footprint} states), "
            f"annotations {outage.annotations[:3]}"
        )

    detected_states = {spike.state for spike in study.spikes if spike.magnitude > 5}
    print(
        f"\nGround truth affected WA/OR/ID; SIFT flagged {sorted(detected_states)}; "
        f"Montana (control) {'stayed' if 'MT' not in detected_states else 'did NOT stay'} quiet."
    )


if __name__ == "__main__":
    main()
