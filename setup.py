"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so
``pip install -e .`` cannot build the modern editable wheel.  This shim
lets ``python setup.py develop`` (and thus ``pip install -e . --no-build-isolation``
on older setuptools) fall back to the egg-link editable install.  All
real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
